package analysis

import "testing"

// coreFixture declares a watched parameter struct the way internal/core
// does: a named struct with a Validate() error method.
const coreFixture = `package core

import "errors"

type Params struct {
	C     float64
	Alpha float64
}

func (p Params) Validate() error {
	if p.C <= 0 {
		return errors.New("core: C must be positive")
	}
	return nil
}

// New is the model entry point: it validates.
func New(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.C * p.Alpha, nil
}

// MustNew forwards to a validating call.
func MustNew(p Params) float64 {
	v, err := New(p)
	if err != nil {
		panic(err)
	}
	return v
}
`

func TestParamValidateEntryPoints(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "entry point reading params without validating is flagged",
			src: `package core
import "errors"
type Params struct{ C float64 }
func (p Params) Validate() error {
	if p.C <= 0 {
		return errors.New("bad")
	}
	return nil
}
func Throughput(p Params) float64 { // line 10: flagged (p never validated)
	return p.C * 2
}
func Checked(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.C * 2, nil
}
func Forwarded(p Params) (float64, error) {
	return Checked(p)
}
func ForwardedCopy(p Params) (float64, error) {
	q := p
	q.C += 1
	return Checked(q)
}
`,
			want: []int{10},
		},
		{
			name: "unexported helpers and methods on the struct are exempt",
			src: `package core
import "errors"
type Params struct{ C float64 }
func (p Params) Validate() error {
	if p.C <= 0 {
		return errors.New("bad")
	}
	return nil
}
func (p Params) Halved() float64 { return p.C / 2 }
func scale(p Params, f float64) float64 { return p.C * f }
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: `package core
import "errors"
type Params struct{ C float64 }
func (p Params) Validate() error {
	if p.C <= 0 {
		return errors.New("bad")
	}
	return nil
}
//modelcheck:ignore paramvalidate
func Raw(p Params) float64 { return p.C }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, ParamValidate, "internal/core/fixture.go", tc.src), tc.want...)
		})
	}
}

func TestParamValidateConstructions(t *testing.T) {
	cases := []struct {
		name     string
		consumer string
		want     []int // finding lines within app/app.go
	}{
		{
			name: "literal handed to a core entry point is fine",
			consumer: `package app
import "fixturemod/internal/core"
func Run() (float64, error) {
	p := core.Params{C: 1, Alpha: 0.5}
	return core.New(p)
}
`,
			want: nil,
		},
		{
			name: "literal validated explicitly is fine",
			consumer: `package app
import "fixturemod/internal/core"
func Run() (float64, error) {
	p := core.Params{C: 1}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.C, nil
}
`,
			want: nil,
		},
		{
			name: "returned literal is the caller's responsibility",
			consumer: `package app
import "fixturemod/internal/core"
func Defaults() core.Params {
	return core.Params{C: 2.5e9, Alpha: 0.1}
}
`,
			want: nil,
		},
		{
			name: "literal used raw without any validation path is flagged",
			consumer: `package app
import "fixturemod/internal/core"
func Run() float64 {
	p := core.Params{C: -1} // line 4: flagged
	return p.C * 2
}
`,
			want: []int{4},
		},
		{
			name: "direct literal argument to a non-core call is flagged",
			consumer: `package app
import "fixturemod/internal/core"
func use(p core.Params) float64 { return p.C }
func Run() float64 {
	return use(core.Params{C: -1}) // line 5: flagged
}
`,
			want: []int{5},
		},
		{
			name: "ignore directive suppresses",
			consumer: `package app
import "fixturemod/internal/core"
func Run() float64 {
	p := core.Params{C: -1} //modelcheck:ignore paramvalidate — invalid on purpose for an error-path test
	return p.C * 2
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := loadTempModule(t, map[string]string{
				"internal/core/core.go": coreFixture,
				"app/app.go":            tc.consumer,
			})
			var appFindings []Finding
			for _, f := range RunAnalyzers(pkgs, []*Analyzer{ParamValidate}) {
				if pkgPathHasSuffix(f.File, "app/app.go") {
					appFindings = append(appFindings, f)
				}
			}
			sameLines(t, appFindings, tc.want...)
		})
	}
}

// TestParamValidateHelperConstructors exercises the cross-function half of
// the analyzer: a helper that returns a Params literal moves the validation
// obligation to its call sites, resolved through call-graph summaries
// rather than per-function syntax.
func TestParamValidateHelperConstructors(t *testing.T) {
	cases := []struct {
		name     string
		consumer string
		want     []int // finding lines within app/app.go
	}{
		{
			name: "unvalidated helper result used raw is flagged at the call",
			consumer: `package app
import "fixturemod/internal/core"
func defaults() core.Params {
	return core.Params{C: 2.5e9, Alpha: 0.1}
}
func Run() float64 {
	p := defaults() // line 7: flagged — no path validates p
	return p.C * 2
}
`,
			want: []int{7},
		},
		{
			name: "helper result handed to a validating entry point is fine",
			consumer: `package app
import "fixturemod/internal/core"
func defaults() core.Params {
	return core.Params{C: 2.5e9, Alpha: 0.1}
}
func Run() (float64, error) {
	p := defaults()
	return core.New(p)
}
`,
			want: nil,
		},
		{
			name: "helper result validated explicitly is fine",
			consumer: `package app
import "fixturemod/internal/core"
func defaults() core.Params {
	return core.Params{C: 2.5e9, Alpha: 0.1}
}
func Run() (float64, error) {
	p := defaults()
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.C, nil
}
`,
			want: nil,
		},
		{
			name: "helper that validates before returning clears its callers",
			consumer: `package app
import "fixturemod/internal/core"
func checked() core.Params {
	p := core.Params{C: 2.5e9, Alpha: 0.1}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
func Run() float64 {
	p := checked()
	return p.C * 2
}
`,
			want: nil,
		},
		{
			name: "validation chased through an intermediate helper",
			consumer: `package app
import "fixturemod/internal/core"
func defaults() core.Params {
	return core.Params{C: 2.5e9, Alpha: 0.1}
}
func runModel(p core.Params) (float64, error) {
	return core.New(p)
}
func Run() (float64, error) {
	p := defaults()
	return runModel(p)
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := loadTempModule(t, map[string]string{
				"internal/core/core.go": coreFixture,
				"app/app.go":            tc.consumer,
			})
			var appFindings []Finding
			for _, f := range RunAnalyzers(pkgs, []*Analyzer{ParamValidate}) {
				if pkgPathHasSuffix(f.File, "app/app.go") {
					appFindings = append(appFindings, f)
				}
			}
			sameLines(t, appFindings, tc.want...)
		})
	}
}
