package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// epsilonPackage is the one package allowed to compare floats exactly and
// use raw randomness primitives: it hosts the epsilon helpers
// (dist.AlmostEqual, dist.WithinRel) and the seeded generator everything
// else is expected to use. Matched by suffix so the module prefix does not
// matter.
const epsilonPackage = "internal/dist"

// FloatCmp flags == and != between floating-point operands, and switch
// statements whose tag is floating-point. Exact float equality is almost
// never what the model code means: projections accumulate rounding, so
// comparisons must either go through the epsilon helpers in internal/dist
// or be annotated as deliberate sentinel checks.
//
// Comparisons where both operands are compile-time constants are exempt
// (they are folded exactly), as is the epsilon package itself.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= and switch on floating-point values outside internal/dist epsilon helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	if pkgPathHasSuffix(pass.PkgPath, epsilonPackage) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.Info.TypeOf(node.X)) && !isFloat(pass.Info.TypeOf(node.Y)) {
					return true
				}
				if isConstExpr(pass, node.X) && isConstExpr(pass, node.Y) {
					return true
				}
				pass.Reportf(node, SeverityError,
					"exact float comparison (%s); use dist.AlmostEqual/dist.WithinRel, or annotate a deliberate sentinel check with //modelcheck:ignore floatcmp",
					node.Op)
			case *ast.SwitchStmt:
				if node.Tag == nil || !isFloat(pass.Info.TypeOf(node.Tag)) {
					return true
				}
				pass.Reportf(node, SeverityError,
					"switch on floating-point value compares exactly; restructure with epsilon comparisons from dist")
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether the expression has a compile-time value.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// pkgPathHasSuffix matches a package path against a short suffix form like
// "internal/dist" regardless of module prefix; used by analyzers that scope
// to repo areas.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
