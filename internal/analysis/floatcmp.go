package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// epsilonPackage is the one package allowed to compare floats exactly and
// use raw randomness primitives: it hosts the epsilon helpers
// (dist.AlmostEqual, dist.WithinRel) and the seeded generator everything
// else is expected to use. Matched by suffix so the module prefix does not
// matter.
const epsilonPackage = "internal/dist"

// FloatCmp flags == and != between floating-point operands, and switch
// statements whose tag is floating-point. Exact float equality is almost
// never what the model code means: projections accumulate rounding, so
// comparisons must either go through the epsilon helpers in internal/dist
// or be annotated as deliberate sentinel checks.
//
// Comparisons where both operands are compile-time constants are exempt
// (they are folded exactly), as is the epsilon package itself.
//
// Test files carry one additional documented exemption: the golden-value
// rule. In a _test.go file an exact comparison where either operand is a
// compile-time constant is legal — that is how tests pin exactly-derived
// golden values (`if got.Count != 40`, `if share != 0.64`), and wrapping
// every such pin in an epsilon helper would hide genuine drift the test
// exists to catch. Comparisons between two computed floats stay flagged
// even in tests: those accumulate rounding on both sides and need
// dist.WithinRel or a reasoned annotation.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= and switch on floating-point values outside internal/dist epsilon helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	if pkgPathHasSuffix(pass.PkgPath, epsilonPackage) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.Info.TypeOf(node.X)) && !isFloat(pass.Info.TypeOf(node.Y)) {
					return true
				}
				if isConstExpr(pass, node.X) && isConstExpr(pass, node.Y) {
					return true
				}
				// Golden-value rule: tests may pin a computed float
				// against a checked-in constant exactly.
				if inTestFile(pass, node) && (isConstExpr(pass, node.X) || isConstExpr(pass, node.Y)) {
					return true
				}
				pass.Reportf(node, SeverityError,
					"exact float comparison (%s); use dist.AlmostEqual/dist.WithinRel, or annotate a deliberate sentinel check with //modelcheck:ignore floatcmp",
					node.Op)
			case *ast.SwitchStmt:
				if node.Tag == nil || !isFloat(pass.Info.TypeOf(node.Tag)) {
					return true
				}
				pass.Reportf(node, SeverityError,
					"switch on floating-point value compares exactly; restructure with epsilon comparisons from dist")
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether the expression has a compile-time value.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// pkgPathHasSuffix matches a package path against a short suffix form like
// "internal/dist" regardless of module prefix; used by analyzers that scope
// to repo areas.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
