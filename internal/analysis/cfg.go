package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Control-flow graphs for function bodies. Every flow-sensitive analyzer in
// this package (lockcheck's release checking, poolcheck's buffer-ownership
// tracking) and the call-graph summary computation (callgraph.go) run over
// the same basic-block CFG built here, so the path semantics they agree on
// are defined in exactly one place:
//
//   - blocks hold only simple statements (assignments, calls, defers,
//     returns, sends, incdec, declarations). Control constructs are
//     decomposed into blocks and edges: if/for/range/switch/type-switch/
//     select, break/continue with labels, goto, and fallthrough all become
//     explicit edges;
//   - conditions and switch tags appear in their block as fabricated
//     *ast.ExprStmt wrappers, and a range clause as a fabricated
//     *ast.AssignStmt, so expression-scanning analyses see every evaluated
//     expression exactly once, at its true position;
//   - `return` edges to the single Exit block; `panic`, `os.Exit`,
//     `runtime.Goexit`, `log.Fatal*`, and `(*testing.common).Fatal*`-style
//     calls terminate their block with no successors (Term == TermPanic),
//     so "on all paths" analyses naturally exclude panicking paths;
//   - defer is modeled in-path: the *ast.DeferStmt sits in its block, and
//     each analysis decides what registering the action means (lockcheck
//     treats a reached `defer mu.Unlock()` as an exit-edge release,
//     poolcheck treats `defer putBuf(b)` as a pending release that still
//     permits reads until exit).
//
// The builder never prunes: statements after a terminator land in fresh
// blocks with no predecessors, which keeps goto-into-dead-code working and
// lets Dominators report unreachability (idom == nil) instead of the
// builder guessing.

// BlockKind distinguishes the structural role of a block.
type BlockKind uint8

const (
	BlockBody  BlockKind = iota // ordinary basic block
	BlockEntry                  // function entry (also holds leading statements)
	BlockExit                   // the single normal-return exit; always empty
)

// TermKind records how a block's control flow ends when it has no
// successors by design rather than by fallthrough.
type TermKind uint8

const (
	TermNone  TermKind = iota // flows to its successors
	TermPanic                 // ends in panic/os.Exit/Goexit/t.Fatal — path dies
)

// Block is one basic block: a maximal run of simple statements with a
// single entry and a single exit point.
type Block struct {
	Index int
	Kind  BlockKind
	Term  TermKind
	Stmts []ast.Stmt
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function or function-literal body.
type CFG struct {
	Fset   *token.FileSet
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg    *CFG
	info   *types.Info
	cur    *Block // nil after a terminator until the next statement starts a dead block
	labels map[string]*Block
	brk    []breakEntry
}

// breakEntry is one enclosing breakable construct; cont is nil for
// switch/select (continue skips them).
type breakEntry struct {
	label string
	brk   *Block
	cont  *Block
}

// NewCFG builds the control-flow graph of body. info may be nil (fixture
// parsing without type information); terminator detection then degrades to
// recognizing only the builtin panic by name.
func NewCFG(fset *token.FileSet, body *ast.BlockStmt, info *types.Info) *CFG {
	c := &CFG{Fset: fset}
	b := &cfgBuilder{cfg: c, info: info, labels: map[string]*Block{}}
	c.Entry = b.newBlock(BlockEntry)
	c.Exit = b.newBlock(BlockExit)
	b.cur = c.Entry
	for _, s := range body.List {
		b.stmt(s, "")
	}
	b.jump(c.Exit) // falling off the end is an implicit return
	return c
}

func (b *cfgBuilder) newBlock(kind BlockKind) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds from → to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target (no-op after a
// terminator).
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
	b.cur = nil
}

// ensure returns the current block, starting a fresh (dead) one if the
// previous statement terminated control flow.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock(BlockBody)
	}
	return b.cur
}

// add appends a simple statement to the current block.
func (b *cfgBuilder) add(s ast.Stmt) { b.ensure().Stmts = append(b.ensure().Stmts, s) }

// wrap fabricates an ExprStmt carrying a condition or tag expression so
// block scanners see it at its real position.
func wrap(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

// labelBlock returns (creating on demand) the block a label names, for
// goto targets and labeled statements.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock(BlockBody)
	b.labels[name] = blk
	return blk
}

// findBreak resolves a break target; empty label means innermost.
func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.brk) - 1; i >= 0; i-- {
		if label == "" || b.brk[i].label == label {
			return b.brk[i].brk
		}
	}
	return nil
}

// findContinue resolves a continue target; empty label means the innermost
// loop (entries with nil cont are switches/selects and are skipped).
func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.brk) - 1; i >= 0; i-- {
		if b.brk[i].cont == nil {
			continue
		}
		if label == "" || b.brk[i].label == label {
			return b.brk[i].cont
		}
	}
	return nil
}

// stmt translates one statement. label is the name of the LabeledStmt
// directly wrapping s, consumed by loops/switches/selects for labeled
// break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.stmt(inner, "")
		}
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		lbl := b.labelBlock(s.Label.Name)
		b.jump(lbl)
		b.cur = lbl
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if t := b.findBreak(lbl); t != nil {
				b.jump(t)
			} else {
				b.cur = nil // malformed; sever the path rather than mislink
			}
		case token.CONTINUE:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if t := b.findContinue(lbl); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			// Linked by the switch builder (it sees the trailing
			// fallthrough); nothing to do here.
		}
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatorCall(call, b.info) {
			b.ensure().Term = TermPanic
			b.cur = nil
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(wrap(s.Cond))
		cond := b.ensure()
		b.cur = nil
		then := b.newBlock(BlockBody)
		edge(cond, then)
		b.cur = then
		b.stmt(s.Body, "")
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			elseB := b.newBlock(BlockBody)
			edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		join := b.newBlock(BlockBody)
		if thenEnd != nil {
			edge(thenEnd, join)
		}
		if hasElse {
			if elseEnd != nil {
				edge(elseEnd, join)
			}
		} else {
			edge(cond, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock(BlockBody)
		b.jump(head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, wrap(s.Cond))
		}
		join := b.newBlock(BlockBody)
		if s.Cond != nil {
			edge(head, join)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock(BlockBody)
			cont = post
		}
		body := b.newBlock(BlockBody)
		edge(head, body)
		b.brk = append(b.brk, breakEntry{label: label, brk: join, cont: cont})
		b.cur = body
		b.stmt(s.Body, "")
		b.brk = b.brk[:len(b.brk)-1]
		if post != nil {
			b.jump(post)
			b.cur = post
			b.stmt(s.Post, "")
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.cur = join
	case *ast.RangeStmt:
		head := b.newBlock(BlockBody)
		b.jump(head)
		head.Stmts = append(head.Stmts, rangeClauseStmt(s))
		join := b.newBlock(BlockBody)
		edge(head, join)
		body := b.newBlock(BlockBody)
		edge(head, body)
		b.brk = append(b.brk, breakEntry{label: label, brk: join, cont: head})
		b.cur = body
		b.stmt(s.Body, "")
		b.brk = b.brk[:len(b.brk)-1]
		b.jump(head)
		b.cur = join
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(wrap(s.Tag))
		}
		b.buildSwitchBody(s.Body, label, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Stmts = append(blk.Stmts, wrap(e))
			}
		}, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.buildSwitchBody(s.Body, label, nil, false)
	case *ast.SelectStmt:
		entry := b.ensure()
		b.cur = nil
		join := b.newBlock(BlockBody)
		b.brk = append(b.brk, breakEntry{label: label, brk: join, cont: nil})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			caseB := b.newBlock(BlockBody)
			edge(entry, caseB)
			if cc.Comm != nil {
				caseB.Stmts = append(caseB.Stmts, cc.Comm)
			}
			b.cur = caseB
			for _, inner := range cc.Body {
				b.stmt(inner, "")
			}
			b.jump(join)
		}
		b.brk = b.brk[:len(b.brk)-1]
		// select{} blocks forever: entry keeps no successors and join
		// stays unreachable.
		b.cur = join
	case *ast.GoStmt, *ast.DeferStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt:
		b.add(s)
	default:
		// Future statement kinds: record them so analyses at least see the
		// node, and keep linear flow.
		b.add(s)
	}
}

// buildSwitchBody lays out the case blocks of a switch or type switch.
// caseExprs (when non-nil) records the clause's comparison expressions in
// its block; allowFallthrough links a trailing fallthrough to the next
// clause's block.
func (b *cfgBuilder) buildSwitchBody(body *ast.BlockStmt, label string,
	caseExprs func(*ast.CaseClause, *Block), allowFallthrough bool) {
	entry := b.ensure()
	b.cur = nil
	join := b.newBlock(BlockBody)
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, s := range body.List {
		clauses = append(clauses, s.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(BlockBody)
		edge(entry, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(cc, blocks[i])
		}
	}
	if !hasDefault {
		edge(entry, join)
	}
	b.brk = append(b.brk, breakEntry{label: label, brk: join, cont: nil})
	for i, cc := range clauses {
		stmts := cc.Body
		fallsThrough := false
		if allowFallthrough && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:len(stmts)-1]
			}
		}
		b.cur = blocks[i]
		for _, inner := range stmts {
			b.stmt(inner, "")
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(join)
		}
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = join
}

// rangeClauseStmt fabricates the per-iteration assignment a range clause
// performs, so expression scanners see the key/value targets and the
// ranged operand. A bare `for range ch` degrades to an ExprStmt.
func rangeClauseStmt(s *ast.RangeStmt) ast.Stmt {
	var lhs []ast.Expr
	if s.Key != nil {
		lhs = append(lhs, s.Key)
	}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	if len(lhs) == 0 {
		return wrap(s.X)
	}
	return &ast.AssignStmt{Lhs: lhs, TokPos: s.TokPos, Tok: s.Tok, Rhs: []ast.Expr{s.X}}
}

// terminatorFuncs are package-level functions that never return.
var terminatorFuncs = map[string]bool{
	"os.Exit":        true,
	"runtime.Goexit": true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
}

// terminatorTestMethods are the testing.T/B/F methods that stop the test
// goroutine (all are promoted from testing.common).
var terminatorTestMethods = map[string]bool{
	"Fatal": true, "Fatalf": true, "FailNow": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
}

// isTerminatorCall reports whether the call never returns control to the
// following statement.
func isTerminatorCall(call *ast.CallExpr, info *types.Info) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if info == nil {
			return true
		}
		obj := info.Uses[fun]
		return obj == nil || obj == types.Universe.Lookup("panic")
	case *ast.SelectorExpr:
		if info == nil {
			return false
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os", "runtime", "log":
			return terminatorFuncs[fn.Pkg().Name()+"."+fn.Name()]
		case "testing":
			return terminatorTestMethods[fn.Name()]
		}
	}
	return false
}

// --- dominators -----------------------------------------------------------

// Dominators returns the immediate-dominator tree as a slice indexed by
// Block.Index: idom[i] is the immediate dominator of block i, nil for the
// entry block and for blocks unreachable from it. Algorithm: the iterative
// RPO dataflow of Cooper, Harvey & Kennedy ("A Simple, Fast Dominance
// Algorithm").
func (c *CFG) Dominators() []*Block {
	return dominatorsOf(c.Blocks, c.Entry, func(b *Block) []*Block { return b.Preds },
		func(b *Block) []*Block { return b.Succs })
}

// PostDominators returns the immediate post-dominator tree: ipdom[i] is
// nil for the exit roots themselves (the Exit block, panic-terminated
// blocks, and stuck blocks with no successors) and for blocks from which
// no exit is reachable. Multiple exit roots are joined under an implicit
// virtual root, so two blocks whose only common post-dominator is "the
// function ends somehow" report ipdom == the virtual root's stand-in, nil.
func (c *CFG) PostDominators() []*Block {
	// Reverse the graph under a virtual root that fans into every exit.
	virtual := &Block{Index: len(c.Blocks)}
	all := append(append([]*Block{}, c.Blocks...), virtual)
	roots := []*Block{}
	for _, b := range c.Blocks {
		if len(b.Succs) == 0 {
			roots = append(roots, b)
		}
	}
	succsOf := func(b *Block) []*Block { // reversed: preds, plus virtual→roots
		if b == virtual {
			return roots
		}
		return b.Preds
	}
	predsOf := func(b *Block) []*Block {
		if b == virtual {
			return nil
		}
		preds := append([]*Block{}, b.Succs...)
		for _, r := range roots {
			if r == b {
				preds = append(preds, virtual)
				break
			}
		}
		return preds
	}
	idom := dominatorsOf(all, virtual, predsOf, succsOf)
	out := make([]*Block, len(c.Blocks))
	for i, d := range idom[:len(c.Blocks)] {
		if d != virtual {
			out[i] = d
		}
	}
	return out
}

// dominatorsOf runs the CHK iterative algorithm from root over an
// arbitrary edge orientation.
func dominatorsOf(blocks []*Block, root *Block, predsOf, succsOf func(*Block) []*Block) []*Block {
	// Reverse postorder from root.
	index := map[*Block]int{}
	for i, b := range blocks {
		index[b] = i
	}
	var order []*Block
	seen := make([]bool, len(blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[index[b]] = true
		for _, s := range succsOf(b) {
			if !seen[index[s]] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(root)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := map[*Block]int{}
	for i, b := range order {
		rpo[b] = i
	}

	idom := make([]*Block, len(blocks))
	idom[index[root]] = root
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[index[a]]
			}
			for rpo[b] > rpo[a] {
				b = idom[index[b]]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == root {
				continue
			}
			var newIdom *Block
			for _, p := range predsOf(b) {
				if idom[index[p]] == nil {
					continue // predecessor not yet reached
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[index[b]] != newIdom {
				idom[index[b]] = newIdom
				changed = true
			}
		}
	}
	out := make([]*Block, len(blocks))
	copy(out, idom)
	out[index[root]] = nil // the root has no immediate dominator
	return out
}

// EscapesWithout reports whether some path starting at block start
// (considering only statements from index from onward) reaches the Exit
// block without passing a statement for which release returns true. Paths
// that die in panic-terminated or stuck blocks never "escape": a panic
// unwinds through defers and a blocked-forever select never returns, so
// neither can leak a resource to a caller. This is the shared primitive
// behind lockcheck's "released on every non-panic path" and the call-graph
// "releases lock on all paths" summary bit.
func (c *CFG) EscapesWithout(start *Block, from int, release func(ast.Stmt) bool) bool {
	visited := map[*Block]bool{}
	var walk func(b *Block, idx int) bool
	walk = func(b *Block, idx int) bool {
		for _, s := range b.Stmts[idx:] {
			if release(s) {
				return false
			}
		}
		if b == c.Exit {
			return true
		}
		for _, s := range b.Succs {
			if !visited[s] {
				visited[s] = true
				if walk(s, 0) {
					return true
				}
			}
		}
		return false
	}
	return walk(start, from)
}

// --- debug rendering ------------------------------------------------------

// String renders the CFG compactly for golden tests: one line per block
// with its kind, the source lines of its statements, and its successors.
//
//	b0 entry [3 4] => b2
//	b2 [5] => b1 b3
//	b1 exit
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d", b.Index)
		switch b.Kind {
		case BlockEntry:
			sb.WriteString(" entry")
		case BlockExit:
			sb.WriteString(" exit")
		}
		if b.Term == TermPanic {
			sb.WriteString(" panic")
		}
		if len(b.Stmts) > 0 {
			lines := make([]string, len(b.Stmts))
			for i, s := range b.Stmts {
				lines[i] = fmt.Sprintf("%d", c.Fset.Position(s.Pos()).Line)
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(lines, " "))
		}
		if len(b.Succs) > 0 {
			parts := make([]string, len(b.Succs))
			for i, s := range b.Succs {
				parts[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, " => %s", strings.Join(parts, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// DomString renders the immediate-dominator tree for golden tests:
// "b2<-b0 b3<-b2" sorted by block index; unreachable blocks are omitted.
func (c *CFG) DomString() string {
	idom := c.Dominators()
	var parts []string
	for i, d := range idom {
		if d != nil {
			parts = append(parts, fmt.Sprintf("b%d<-b%d", i, d.Index))
		}
	}
	sort.Strings(parts) // already ordered by index for <10 blocks; sort for stability beyond
	return strings.Join(parts, " ")
}
