package analysis

import (
	"strings"
	"testing"
)

// buildTestModule loads a throwaway module and builds its call graph plus
// summaries, returning the module and a by-name lookup over declared
// functions (methods are keyed "Type.Method").
func buildTestModule(t *testing.T, files map[string]string) (*Module, map[string]*CallNode) {
	t.Helper()
	pkgs := loadTempModule(t, files)
	m := BuildModule(pkgs)
	byName := map[string]*CallNode{}
	for _, n := range m.Graph.order {
		name := n.Func.Name()
		if sig := funcSig(n.Func); sig.Recv() != nil {
			// "*fixturemod/pkg.S" or "fixturemod/pkg.S" → "S"
			s := sig.Recv().Type().String()
			if i := strings.LastIndexByte(s, '.'); i >= 0 {
				s = s[i+1:]
			}
			name = s + "." + name
		}
		byName[name] = n
	}
	return m, byName
}

func TestCallGraphEdges(t *testing.T) {
	_, byName := buildTestModule(t, map[string]string{
		"internal/a/a.go": `package a
func Leaf() int { return 1 }
func Mid() int  { return Leaf() + Leaf() }
`,
		"internal/b/b.go": `package b
import "fixturemod/internal/a"
func Top() int {
	f := a.Leaf // function value: no static edge
	return a.Mid() + f()
}
`,
	})
	leaf, mid, top := byName["Leaf"], byName["Mid"], byName["Top"]
	if leaf == nil || mid == nil || top == nil {
		t.Fatalf("missing nodes: %v %v %v", leaf, mid, top)
	}
	if len(mid.Calls) != 1 || mid.Calls[0] != leaf {
		t.Fatalf("Mid.Calls = %v, want [Leaf] exactly once despite two call sites", mid.Calls)
	}
	if len(top.Calls) != 1 || top.Calls[0] != mid {
		t.Fatalf("Top.Calls = %v, want [Mid] only — the function-value use of Leaf is not a static edge", top.Calls)
	}
	if len(leaf.CalledBy) != 1 || leaf.CalledBy[0] != mid {
		t.Fatalf("Leaf.CalledBy = %v, want [Mid]", leaf.CalledBy)
	}
}

const summaryCoreFixture = `package core
import "errors"
type Params struct{ C float64 }
func (p Params) Validate() error {
	if p.C <= 0 {
		return errors.New("bad")
	}
	return nil
}
func New(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.C, nil
}
`

func TestSummaryValidatesParamsChain(t *testing.T) {
	m, byName := buildTestModule(t, map[string]string{
		"internal/core/core.go": summaryCoreFixture,
		"app/app.go": `package app
import "fixturemod/internal/core"
func direct(p core.Params) error { return p.Validate() }
func forward(p core.Params) error { return direct(p) }
func twice(p core.Params) error { return forward(p) }
func reads(p core.Params) float64 { return p.C }
`,
	})
	for _, name := range []string{"direct", "forward", "twice"} {
		s := m.SummaryOf(byName[name].Func)
		if s == nil || len(s.ValidatesParams) != 1 || !s.ValidatesParams[0] {
			t.Fatalf("%s: ValidatesParams = %+v, want [true] via the call chain", name, s)
		}
	}
	if s := m.SummaryOf(byName["reads"].Func); s.ValidatesParams[0] {
		t.Fatalf("reads merely uses the struct; ValidatesParams should stay false")
	}
}

func TestSummaryValidatedResults(t *testing.T) {
	m, byName := buildTestModule(t, map[string]string{
		"internal/core/core.go": summaryCoreFixture,
		"app/app.go": `package app
import "fixturemod/internal/core"
func raw() core.Params {
	return core.Params{C: 1}
}
func checked() core.Params {
	p := core.Params{C: 1}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
func rechecked() core.Params {
	return checked()
}
`,
	})
	raw := m.SummaryOf(byName["raw"].Func)
	if !raw.WatchedResults[0] || raw.ValidatedResults[0] {
		t.Fatalf("raw: watched=%v validated=%v, want watched unvalidated result", raw.WatchedResults, raw.ValidatedResults)
	}
	for _, name := range []string{"checked", "rechecked"} {
		s := m.SummaryOf(byName[name].Func)
		if !s.ValidatedResults[0] {
			t.Fatalf("%s: ValidatedResults = %v, want [true]", name, s.ValidatedResults)
		}
	}
}

func TestSummaryTakesOwnershipChain(t *testing.T) {
	m, byName := buildTestModule(t, map[string]string{
		"internal/rpc/pool.go": `package rpc
func getBuf(n int) []byte { return make([]byte, 0, n) }
func putBuf(b []byte)     {}
func sink(b []byte)       { putBuf(b) }
func relay(b []byte)      { sink(b) }
func peek(b []byte) int   { return len(b) }
`,
	})
	for _, name := range []string{"sink", "relay"} {
		s := m.SummaryOf(byName[name].Func)
		if s == nil || len(s.TakesOwnership) != 1 || !s.TakesOwnership[0] {
			t.Fatalf("%s: TakesOwnership = %+v, want [true]", name, s)
		}
	}
	if s := m.SummaryOf(byName["peek"].Func); s.TakesOwnership[0] {
		t.Fatalf("peek only reads the buffer; TakesOwnership should stay false")
	}
}

func TestSummaryReturnsPooled(t *testing.T) {
	m, byName := buildTestModule(t, map[string]string{
		"internal/rpc/pool.go": `package rpc
import "errors"
func getBuf(n int) []byte { return make([]byte, 0, n) }
func putBuf(b []byte)     {}
func getBufN(n int) []byte { return getBuf(n)[:n] }
func viaHelper(n int) []byte { return getBufN(n) }
func maybe(n int) []byte {
	if n > 1024 {
		return make([]byte, n)
	}
	return getBuf(n)
}
func framed(n int) ([]byte, error) {
	if n < 0 {
		return nil, errors.New("bad size")
	}
	return getBuf(n), nil
}
`,
	})
	for _, name := range []string{"getBufN", "viaHelper"} {
		s := m.SummaryOf(byName[name].Func)
		if s == nil || len(s.ReturnsPooled) != 1 || !s.ReturnsPooled[0] {
			t.Fatalf("%s: ReturnsPooled = %+v, want [true]", name, s)
		}
	}
	if s := m.SummaryOf(byName["maybe"].Func); s.ReturnsPooled[0] {
		t.Fatal("maybe has a non-pooled return path; ReturnsPooled should stay false")
	}
	if s := m.SummaryOf(byName["framed"].Func); s.ReturnsPooled[0] || s.ReturnsPooled[1] {
		t.Fatalf("framed: the error path returns nil; ReturnsPooled = %v, want all false", s.ReturnsPooled)
	}
}

func TestSummaryLockHelpers(t *testing.T) {
	m, byName := buildTestModule(t, map[string]string{
		"internal/s/s.go": `package s
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func (s *S) release()    { s.mu.Unlock() }
func (s *S) acquire()    { s.mu.Lock() }
func (s *S) releaseIf(b bool) {
	if b {
		s.mu.Unlock()
	}
}
var gmu sync.Mutex
func globalRelease() { gmu.Unlock() }
`,
	})
	rel := m.SummaryOf(byName["S.release"].Func)
	if len(rel.ReleasesLocks) != 1 || rel.ReleasesLocks[0] != "·.mu" {
		t.Fatalf("release: ReleasesLocks = %v, want [·.mu] (receiver-canonical)", rel.ReleasesLocks)
	}
	acq := m.SummaryOf(byName["S.acquire"].Func)
	if len(acq.AcquiresLocks) != 1 || acq.AcquiresLocks[0] != "·.mu" {
		t.Fatalf("acquire: AcquiresLocks = %v, want [·.mu]", acq.AcquiresLocks)
	}
	// A conditional unlock does not release on every path, so it must not
	// count as a release helper.
	relIf := m.SummaryOf(byName["S.releaseIf"].Func)
	if len(relIf.ReleasesLocks) != 0 {
		t.Fatalf("releaseIf: ReleasesLocks = %v, want none — the false branch holds the lock", relIf.ReleasesLocks)
	}
	grel := m.SummaryOf(byName["globalRelease"].Func)
	if len(grel.ReleasesLocks) != 1 || grel.ReleasesLocks[0] != "gmu" {
		t.Fatalf("globalRelease: ReleasesLocks = %v, want [gmu]", grel.ReleasesLocks)
	}
}
