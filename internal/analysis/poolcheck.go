package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the ownership rules of the pooled-buffer layers
// (internal/rpc's getBuf/putBuf and internal/kernels' GetScratch/
// PutScratch) that the zero-allocation hot path depends on:
//
//   - a buffer obtained from the pool must reach a put or an
//     ownership-transferring operation (return, channel send, alias or
//     field store, go/defer handoff, or a call whose summary says it puts
//     the buffer) on every non-panic path — a silent drop re-allocates on
//     the paper's µs-scale serving path and skews the overhead
//     measurements calibrated against it;
//   - no use after put: once a buffer is back in the pool another
//     goroutine may own it;
//   - no double put: putting twice hands the same buffer to two owners.
//
// The check is flow-sensitive (it walks the function's CFG, cfg.go) and
// deliberately local: it tracks only variables directly assigned from a
// pool get in the same function or literal body. "Pool get" is resolved
// interprocedurally: besides the literal entry points, a call to a
// single-result helper whose summary says it returns a pooled buffer on
// every path (FuncSummary.ReturnsPooled — getBufN in internal/rpc is
// the canonical case) starts a tracked epoch too. Buffers that pass
// through append-style helpers (`data, err = f(getBuf(n), ...)`) or are
// captured by closures transfer ownership to code this analyzer does not
// second-guess — those idioms are the hot path's own (see
// internal/rpc/pipeline.go) and remain the API comments' responsibility.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "flags pool buffers that leak, are used after put, or are put twice",
	Run:  runPoolCheck,
}

// poolGetFuncs / poolPutFuncs name the pool entry points, matched by
// function name plus declaring-package path suffix (suffix matching keeps
// fixtures and the real module on the same rule).
var (
	poolGetFuncs = map[string]string{"getBuf": "internal/rpc", "GetScratch": "internal/kernels"}
	poolPutFuncs = map[string]string{"putBuf": "internal/rpc", "PutScratch": "internal/kernels"}
)

func isPoolCall(info *types.Info, call *ast.CallExpr, table map[string]string) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	suffix, ok := table[fn.Name()]
	return ok && pkgPathHasSuffix(fn.Pkg().Path(), suffix)
}

// isPoolGetCall reports whether call obtains a buffer from a pool.
func isPoolGetCall(info *types.Info, call *ast.CallExpr) bool {
	return isPoolCall(info, call, poolGetFuncs)
}

// isPoolPutCall reports whether call returns a buffer to a pool.
func isPoolPutCall(info *types.Info, call *ast.CallExpr) bool {
	return isPoolCall(info, call, poolPutFuncs)
}

func runPoolCheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkPoolBody(pass, fn.Body)
			}
		}
		// Each function literal is its own body: gets inside it are
		// tracked against its control flow, not the enclosing function's.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkPoolBody(pass, lit.Body)
			}
			return true
		})
	}
}

// poolState is the tracked buffer's condition along one path.
type poolState uint8

const (
	psLive     poolState = iota // owned, not yet released
	psPending                   // a defer put is registered; release happens at exit
	psReleased                  // put back in the pool
)

// poolEvent classifies what one statement does to the tracked variable.
type poolEvent uint8

const (
	evNone      poolEvent = iota
	evRead                // uses the buffer's contents
	evPut                 // immediate put
	evDeferPut            // registers a deferred put
	evReget               // reassigned from a fresh pool get
	evOverwrite           // reassigned from anything else (old buffer dropped)
	evTransfer            // ownership leaves this variable (return/send/alias/…)
)

// getSite is one tracked `v := getBuf(n)` statement.
type getSite struct {
	obj   types.Object
	stmt  ast.Stmt
	call  *ast.CallExpr
	block *Block
	index int
}

func checkPoolBody(pass *Pass, body *ast.BlockStmt) {
	// Variables touched by nested closures escape this body's control
	// flow; tracking them would second-guess the closure.
	closureTouched := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					closureTouched[obj] = true
				}
			}
			return true
		})
		return false
	})

	cfg := NewCFG(pass.Fset, body, pass.Info)
	var sites []getSite
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			obj, call := trackedGet(pass, s)
			if obj == nil || closureTouched[obj] {
				continue
			}
			sites = append(sites, getSite{obj: obj, stmt: s, call: call, block: b, index: i})
		}
	}
	for _, site := range sites {
		checkGetSite(pass, cfg, site)
	}
}

// trackedGet recognizes `v := getBuf(n)` / `v = GetScratch(n)[:n]` /
// `v := getBufN(n)` forms — direct pool gets or summary-resolved get
// helpers — where v is a plain local identifier, returning the variable
// and the get call.
func trackedGet(pass *Pass, s ast.Stmt) (types.Object, *ast.CallExpr) {
	info := pass.Info
	assign, ok := s.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != len(assign.Rhs) {
		return nil, nil
	}
	for i, rhs := range assign.Rhs {
		call := getCallOf(pass, rhs)
		if call == nil {
			continue
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			return obj, call
		}
	}
	return nil, nil
}

// getCallOf unwraps a pool-get expression: a direct pool-get call, a
// call to a summary-resolved get helper, or a slicing of either.
func getCallOf(pass *Pass, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || (!isPoolGetCall(pass.Info, call) && !isSummaryGetCall(pass, call)) {
		return nil
	}
	return call
}

// isSummaryGetCall reports whether call invokes a module function whose
// summary marks its single result as pooled on every path (the getBufN
// shape): the call site owns the result exactly as if it had called the
// pool directly. Multi-result helpers (`buf, err := readFrame(...)`)
// never qualify — their error-path results keep ReturnsPooled off.
func isSummaryGetCall(pass *Pass, call *ast.CallExpr) bool {
	callee := staticCallee(pass.Info, call)
	if callee == nil {
		return false
	}
	cs := pass.Mod.SummaryOf(callee)
	return cs != nil && funcSig(callee).Results().Len() == 1 &&
		len(cs.ReturnsPooled) == 1 && cs.ReturnsPooled[0]
}

// checkGetSite runs the ownership state machine forward from one get.
func checkGetSite(pass *Pass, cfg *CFG, site getSite) {
	var (
		leaked   bool
		reported = map[token.Pos]bool{} // dedupe use/double-put across paths
	)
	report := func(n ast.Node, format string, args ...interface{}) {
		if !reported[n.Pos()] {
			reported[n.Pos()] = true
			pass.Reportf(n, SeverityError, format, args...)
		}
	}
	visited := map[*Block]uint8{}
	var walk func(b *Block, from int, st poolState)
	walk = func(b *Block, from int, st poolState) {
		for _, s := range b.Stmts[from:] {
			switch classifyPoolStmt(pass, site.obj, s) {
			case evRead:
				if st == psReleased {
					report(s, "%s is used after being returned to the pool; the pool may already have reissued it", site.obj.Name())
				}
			case evPut:
				if st != psLive {
					report(s, "%s is returned to the pool twice on some path; two future gets would share one buffer", site.obj.Name())
				}
				st = psReleased
			case evDeferPut:
				if st != psLive {
					report(s, "%s is returned to the pool twice on some path; two future gets would share one buffer", site.obj.Name())
				}
				st = psPending
			case evReget:
				// A fresh get starts its own tracked epoch; the old buffer
				// leaks unless released or covered by a pending defer put
				// (whose argument was evaluated at registration).
				if st == psLive {
					leaked = true
				}
				return
			case evOverwrite:
				if st == psLive {
					leaked = true
				}
				return
			case evTransfer:
				if st == psReleased {
					report(s, "%s is handed off after being returned to the pool; the new owner would share it with a future get", site.obj.Name())
				}
				return // ownership left this variable; path is done
			}
		}
		if b == cfg.Exit {
			if st == psLive {
				leaked = true
			}
			return
		}
		for _, succ := range b.Succs {
			bit := uint8(1) << st
			if visited[succ]&bit == 0 {
				visited[succ] |= bit
				walk(succ, 0, st)
			}
		}
	}
	walk(site.block, site.index+1, psLive)
	if leaked {
		pass.Reportf(site.call, SeverityError,
			"pooled buffer %s does not reach a put or an ownership transfer on every non-panic path; the pool loses it and the hot path re-allocates", site.obj.Name())
	}
}

// classifyPoolStmt decides what statement s does to the tracked variable.
func classifyPoolStmt(pass *Pass, obj types.Object, s ast.Stmt) poolEvent {
	info := pass.Info
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	mentions := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	putOf := func(call *ast.CallExpr) bool {
		return isPoolPutCall(info, call) && len(call.Args) == 1 && isObj(call.Args[0])
	}

	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && putOf(call) {
			return evPut
		}
	case *ast.DeferStmt:
		if putOf(s.Call) {
			return evDeferPut
		}
		if mentions(s) {
			return evTransfer // deferred handoff runs after this analysis can see
		}
		return evNone
	case *ast.GoStmt:
		if mentions(s) {
			return evTransfer // concurrent owner
		}
		return evNone
	case *ast.ReturnStmt:
		// Returning the buffer (or a reslice of it) hands it to the
		// caller; returning a value computed FROM it is just a read.
		for _, res := range s.Results {
			if aliasOf(isObj, res) {
				return evTransfer
			}
		}
	case *ast.SendStmt:
		if aliasOf(isObj, s.Value) {
			return evTransfer
		}
	case *ast.AssignStmt:
		// Assignment TO the variable: classify by what replaces it.
		for i, lhs := range s.Lhs {
			if !isObj(lhs) {
				continue
			}
			var rhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if rhs != nil && getCallOf(pass, rhs) != nil {
				return evReget
			}
			for _, r := range s.Rhs {
				if mentions(r) {
					return evRead // self-append style: `v = append(v, …)` retains ownership
				}
			}
			return evOverwrite
		}
		// Assignment FROM the variable: a whole-value alias (plain ident
		// or a slicing of it) moves ownership; element/derived reads do
		// not.
		for _, r := range s.Rhs {
			if aliasOf(isObj, r) {
				return evTransfer
			}
		}
	}
	// Everything else: a store into a composite, a call argument, an
	// expression read. Composite literals and ownership-taking callees
	// transfer; plain reads do not.
	result := evNone
	ast.Inspect(s, func(n ast.Node) bool {
		if result == evTransfer {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isObj(v) {
					result = evTransfer
					return false
				}
			}
		case *ast.CallExpr:
			for j, arg := range n.Args {
				if !isObj(arg) {
					continue
				}
				switch callee := calleeOf(info, n).(type) {
				case *types.Builtin:
					result = evRead
				case *types.Func:
					if sum := pass.Mod.SummaryOf(callee); sum != nil &&
						j < len(sum.TakesOwnership) && sum.TakesOwnership[j] {
						result = evTransfer
						return false
					}
					result = evRead
				default:
					// Function value or unresolvable callee: assume it
					// takes the buffer rather than cry leak later.
					result = evTransfer
					return false
				}
			}
		case *ast.Ident:
			if result == evNone && info.Uses[n] == obj {
				result = evRead
			}
		}
		return true
	})
	return result
}

// aliasOf reports whether e is the tracked buffer itself or a reslicing
// of it — the shapes that carry ownership when assigned, returned, or
// sent.
func aliasOf(isObj func(ast.Expr) bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	return isObj(e)
}

// calleeOf resolves a call's target object (function, builtin, or nil).
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
