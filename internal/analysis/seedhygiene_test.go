package analysis

import "testing"

func TestSeedHygiene(t *testing.T) {
	cases := []struct {
		name string
		file string
		src  string
		want []int
	}{
		{
			name: "global rand functions are flagged",
			file: "fixture.go",
			src: `package fixture
import "math/rand"
func f() float64 {
	rand.Seed(42)        // line 4: flagged
	n := rand.Intn(10)   // line 5: flagged
	return rand.Float64() + float64(n) // line 6: flagged
}
`,
			want: []int{4, 5, 6},
		},
		{
			name: "seeded instances are fine",
			file: "fixture.go",
			src: `package fixture
import "math/rand"
func f() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64() * float64(r.Intn(10))
}
`,
			want: nil,
		},
		{
			name: "internal/dist may wrap raw randomness",
			file: "internal/dist/fixture.go",
			src: `package dist
import "math/rand"
func f() float64 { return rand.Float64() }
`,
			want: nil,
		},
		{
			name: "a local package named rand is not math/rand",
			file: "fixture.go",
			src: `package fixture
type randT struct{}
func (randT) Float64() float64 { return 0.5 }
var rand randT
func f() float64 { return rand.Float64() }
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			file: "fixture.go",
			src: `package fixture
import "math/rand"
func f() int {
	//modelcheck:ignore seedhygiene — jitter here is intentionally unseeded
	return rand.Intn(3)
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, SeedHygiene, tc.file, tc.src), tc.want...)
		})
	}
}
