package analysis

import "testing"

func TestShadow(t *testing.T) {
	cases := []struct {
		name string
		file string
		src  string
		want []int
	}{
		{
			name: "nested block shadow with later read is flagged",
			file: "fixture.go",
			src: `package fixture
func setup() error   { return nil }
func attempt() (int, error) { return 0, nil }
func f(retry bool) error {
	err := setup()
	if retry {
		_, err := attempt() // line 7: flagged
		_ = err
	}
	return err
}
`,
			want: []int{7},
		},
		{
			name: "if-init scoped err is idiomatic",
			file: "fixture.go",
			src: `package fixture
func setup() error { return nil }
func g() error     { return nil }
func f() error {
	err := setup()
	if err := g(); err != nil {
		return err
	}
	return err
}
`,
			want: nil,
		},
		{
			name: "outer err never read after the block",
			file: "fixture.go",
			src: `package fixture
func setup() error { return nil }
func g() error     { return nil }
func f() {
	err := setup()
	_ = err
	{
		err := g()
		_ = err
	}
}
`,
			want: nil,
		},
		{
			name: "outer err only overwritten after the block",
			file: "fixture.go",
			src: `package fixture
func setup() error { return nil }
func g() error     { return nil }
func f() {
	err := setup()
	_ = err
	{
		err := g()
		_ = err
	}
	err = setup()
}
`,
			want: nil,
		},
		{
			name: "intervening refresh clears the later read",
			file: "fixture.go",
			src: `package fixture
func setup() error   { return nil }
func attempt() (int, error) { return 0, nil }
func f(retry bool) error {
	err := setup()
	if retry {
		_, err := attempt() // refresh below kills the staleness
		_ = err
	}
	_, err = attempt()
	return err
}
`,
			want: nil,
		},
		{
			name: "mixed := refresh also clears the later read",
			file: "fixture.go",
			src: `package fixture
func setup() error   { return nil }
func attempt() (int, error) { return 0, nil }
func f(retry bool) error {
	err := setup()
	if retry {
		_, err := attempt()
		_ = err
	}
	n, err := attempt() // := reusing the outer err is a write
	_ = n
	return err
}
`,
			want: nil,
		},
		{
			name: "read after overwrite still flags the shadow",
			file: "fixture.go",
			src: `package fixture
func setup() error { return nil }
func g() error     { return nil }
func f() error {
	err := setup()
	{
		err := g() // line 7: flagged
		_ = err
	}
	return err
}
`,
			want: []int{7},
		},
		{
			name: "fresh err without an outer declaration",
			file: "fixture.go",
			src: `package fixture
func g() error { return nil }
func f() error {
	if true {
		err := g()
		return err
	}
	return nil
}
`,
			want: nil,
		},
		{
			name: "non-error err is not this analyzer's business",
			file: "fixture.go",
			src: `package fixture
func f() int {
	err := 1
	{
		err := 2
		_ = err
	}
	return err
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			file: "fixture.go",
			src: `package fixture
func setup() error   { return nil }
func attempt() (int, error) { return 0, nil }
func f(retry bool) error {
	err := setup()
	if retry {
		//modelcheck:ignore shadow — inner attempt error is deliberately local
		_, err := attempt()
		_ = err
	}
	return err
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, Shadow, tc.file, tc.src), tc.want...)
		})
	}
}
