package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{Analyzer: "floatcmp", File: "internal/core/model.go", Line: 42, Column: 9,
			Severity: SeverityError, Message: "float equality"},
		{Analyzer: "lockcheck", File: "internal/rpc/server.go", Line: 7, Column: 2,
			Severity: SeverityWarning, Message: "lock not released"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), findings); err != nil {
		t.Fatal(err)
	}

	// The log must be valid JSON with the fixed SARIF envelope.
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Fatalf("version = %v, want 2.1.0", log["version"])
	}
	runs := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "modelcheck" {
		t.Fatalf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(All()) {
		t.Fatalf("rules = %d, want one per analyzer (%d) even with sparse findings", len(rules), len(All()))
	}
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "floatcmp" || first["level"] != "error" {
		t.Fatalf("first result = %v", first)
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/core/model.go" {
		t.Fatalf("uri = %v", uri)
	}
	region := loc["region"].(map[string]any)
	if region["startLine"].(float64) != 42 || region["startColumn"].(float64) != 9 {
		t.Fatalf("region = %v", region)
	}
	// ruleIndex must point back at the matching rule.
	idx := int(first["ruleIndex"].(float64))
	if rules[idx].(map[string]any)["id"] != "floatcmp" {
		t.Fatalf("ruleIndex %d does not resolve to floatcmp", idx)
	}
}

func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), nil); err != nil {
		t.Fatal(err)
	}
	// An empty run still carries the rules and an empty (not null) results
	// array — code-scanning rejects null.
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Fatalf("empty findings must encode as an empty results array:\n%s", buf.String())
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(All()) {
		t.Fatal("rules missing from empty run")
	}
}
