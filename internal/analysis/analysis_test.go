package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite of 8", len(all), err)
	}
	subset, err := ByName("floatcmp, lockcheck")
	if err != nil || len(subset) != 2 || subset[0].Name != "floatcmp" || subset[1].Name != "lockcheck" {
		t.Fatalf("ByName subset = %v, err %v", subset, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

func TestIgnoreDirectiveForms(t *testing.T) {
	// A bare directive (no analyzer list) suppresses every analyzer, and
	// a list with several names suppresses exactly those.
	src := `package fixture
import "math/rand"
func f(a, b float64) bool {
	//modelcheck:ignore
	rand.Seed(1)
	return a == b //modelcheck:ignore floatcmp,seedhygiene
}
`
	pkg, err := LoadSource("fixture.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Package{pkg}, All()); len(fs) != 0 {
		t.Fatalf("expected full suppression, got %v", fs)
	}
}

func TestIgnoreDirectiveDoesNotLeakToLaterLines(t *testing.T) {
	src := `package fixture
func f(a, b float64) bool {
	//modelcheck:ignore floatcmp
	ok := a == b
	bad := a != b
	return ok && bad
}
`
	sameLines(t, runOnSource(t, FloatCmp, "fixture.go", src), 5)
}

func TestFindingRendering(t *testing.T) {
	fs := runOnSource(t, FloatCmp, "fixture.go", `package fixture
func f(a, b float64) bool { return a == b }
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	s := fs[0].String()
	if !strings.Contains(s, "fixture.go:2:") || !strings.Contains(s, "[floatcmp]") {
		t.Fatalf("rendered finding %q lacks position or analyzer tag", s)
	}
	data, err := json.Marshal(fs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"analyzer":"floatcmp"`, `"file":`, `"line":2`, `"severity":"error"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON %s lacks %s", data, key)
		}
	}
}

func TestLoadModulePatterns(t *testing.T) {
	files := map[string]string{
		"internal/a/a.go":  "package a\n\nfunc A() int { return 1 }\n",
		"internal/b/b.go":  "package b\n\nimport \"fixturemod/internal/a\"\n\nfunc B() int { return a.A() }\n",
		"cmd/tool/main.go": "package main\n\nimport \"fixturemod/internal/b\"\n\nfunc main() { _ = b.B() }\n",
	}
	pkgs := loadTempModule(t, files)
	if len(pkgs) != 3 {
		t.Fatalf("Load ./... = %d packages, want 3", len(pkgs))
	}
	// Dependency order: a before b before cmd/tool.
	index := map[string]int{}
	for i, p := range pkgs {
		index[p.Path] = i
	}
	if !(index["fixturemod/internal/a"] < index["fixturemod/internal/b"] &&
		index["fixturemod/internal/b"] < index["fixturemod/cmd/tool"]) {
		t.Fatalf("packages not in dependency order: %v", index)
	}
	// Subtree pattern selects only the subtree, while dependencies still
	// resolve.
	dir := pkgs[0].Dir // .../internal/a
	root := strings.TrimSuffix(strings.TrimSuffix(dir, "/a"), "/internal")
	sub, err := Load(LoadConfig{Dir: root}, "./internal/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0].Path != "fixturemod/internal/b" {
		t.Fatalf("Load ./internal/b = %v", sub)
	}
}

func TestLoadRejectsBrokenSource(t *testing.T) {
	files := map[string]string{
		"bad/bad.go": "package bad\n\nfunc Broken() int { return undefinedSymbol }\n",
	}
	dir := t.TempDir()
	writeFixtureModule(t, dir, files)
	if _, err := Load(LoadConfig{Dir: dir}, "./..."); err == nil {
		t.Fatal("Load should surface type errors")
	}
}
