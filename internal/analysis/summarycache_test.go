package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// summaryCacheFixture is a two-package module with enough cross-function
// structure to make cached and computed summaries distinguishable from
// blanks: a validating chain and an ownership chain.
func summaryCacheFixture() map[string]string {
	return map[string]string{
		"internal/core/core.go": summaryCoreFixture,
		"app/app.go": `package app
import "fixturemod/internal/core"
func helper(p core.Params) error { return p.Validate() }
func chained(p core.Params) error { return helper(p) }
func getBuf(n int) []byte { return make([]byte, 0, n) }
func putBuf(b []byte)     {}
func sink(b []byte)       { putBuf(b) }
`,
	}
}

// loadFixtureAt loads an already-materialized fixture module.
func loadFixtureAt(t *testing.T, dir string) []*Package {
	t.Helper()
	pkgs, err := Load(LoadConfig{Dir: dir}, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkgs
}

func chainedValidates(t *testing.T, m *Module) bool {
	t.Helper()
	for _, n := range m.Graph.order {
		if n.Func.Name() == "chained" {
			s := m.SummaryOf(n.Func)
			return s != nil && len(s.ValidatesParams) == 1 && s.ValidatesParams[0]
		}
	}
	t.Fatal("chained not found in call graph")
	return false
}

func TestSummaryCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeFixtureModule(t, dir, summaryCacheFixture())

	m1 := BuildModuleCached(loadFixtureAt(t, dir), dir)
	if m1.FromCache {
		t.Fatal("first build must compute, not hit the cache")
	}
	if !chainedValidates(t, m1) {
		t.Fatal("computed summaries lost the validation chain")
	}
	if _, err := os.Stat(filepath.Join(dir, cacheDirName, summaryCacheName)); err != nil {
		t.Fatalf("summary cache not written: %v", err)
	}

	m2 := BuildModuleCached(loadFixtureAt(t, dir), dir)
	if !m2.FromCache {
		t.Fatal("unchanged module must hit the cache")
	}
	if !chainedValidates(t, m2) {
		t.Fatal("cached summaries lost the validation chain")
	}
}

func TestSummaryCacheInvalidation(t *testing.T) {
	dir := t.TempDir()
	files := summaryCacheFixture()
	writeFixtureModule(t, dir, files)
	BuildModuleCached(loadFixtureAt(t, dir), dir)

	t.Run("edited function body recomputes", func(t *testing.T) {
		edited := strings.Replace(files["app/app.go"],
			"func chained(p core.Params) error { return helper(p) }",
			"func chained(p core.Params) error { _ = p.C; return helper(p) }", 1)
		if err := os.WriteFile(filepath.Join(dir, "app/app.go"), []byte(edited), 0o644); err != nil {
			t.Fatal(err)
		}
		m := BuildModuleCached(loadFixtureAt(t, dir), dir)
		if m.FromCache {
			t.Fatal("edited file must invalidate the summary cache")
		}
		if !chainedValidates(t, m) {
			t.Fatal("recomputed summaries lost the validation chain")
		}
		// And the refreshed cache covers the new content.
		if m2 := BuildModuleCached(loadFixtureAt(t, dir), dir); !m2.FromCache {
			t.Fatal("cache not refreshed after recompute")
		}
	})

	t.Run("go version bump recomputes", func(t *testing.T) {
		path := filepath.Join(dir, cacheDirName, summaryCacheName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var c summaryCacheFile
		if err := json.Unmarshal(data, &c); err != nil {
			t.Fatal(err)
		}
		c.GoVersion = "go0.0-from-another-toolchain"
		tampered, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		if m := BuildModuleCached(loadFixtureAt(t, dir), dir); m.FromCache {
			t.Fatal("stale toolchain version must invalidate the summary cache")
		}
	})
}

// TestSummaryCacheDrivesAnalyzersIdentically: findings must not depend on
// whether the module came from cache or from a fresh fixpoint.
func TestSummaryCacheDrivesAnalyzersIdentically(t *testing.T) {
	dir := t.TempDir()
	files := summaryCacheFixture()
	files["app/bad.go"] = `package app
import "fixturemod/internal/core"
func Bad() float64 {
	p := core.Params{C: -1} // flagged by paramvalidate
	return p.C * 2
}
`
	writeFixtureModule(t, dir, files)

	pkgsFresh := loadFixtureAt(t, dir)
	fresh := BuildModuleCached(pkgsFresh, dir)
	pkgsCached := loadFixtureAt(t, dir)
	cached := BuildModuleCached(pkgsCached, dir)
	if fresh.FromCache || !cached.FromCache {
		t.Fatalf("cache states: fresh=%v cached=%v", fresh.FromCache, cached.FromCache)
	}
	freshFindings := RunAnalyzersWithModule(pkgsFresh, All(), fresh)
	cachedFindings := RunAnalyzersWithModule(pkgsCached, All(), cached)
	if len(freshFindings) == 0 {
		t.Fatal("fixture should produce at least one finding")
	}
	if len(freshFindings) != len(cachedFindings) {
		t.Fatalf("fresh=%v cached=%v", freshFindings, cachedFindings)
	}
	for i := range freshFindings {
		if freshFindings[i].Line != cachedFindings[i].Line ||
			freshFindings[i].Analyzer != cachedFindings[i].Analyzer {
			t.Fatalf("finding %d differs: fresh=%v cached=%v", i, freshFindings[i], cachedFindings[i])
		}
	}
}
