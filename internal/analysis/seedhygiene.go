package analysis

import (
	"go/ast"
	"go/types"
)

// SeedHygiene flags use of math/rand's (and math/rand/v2's) package-level
// functions outside internal/dist. Those functions draw from process-global
// state, so any call site makes characterization output depend on what else
// ran before it — breaking the byte-identical reruns the experiment
// pipeline promises. All randomness must flow through dist.Rand, seeded
// explicitly by the caller.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are not flagged:
// they are only as nondeterministic as the seed handed to them, and
// seedhygiene is about hidden global state, not seed policy.
var SeedHygiene = &Analyzer{
	Name: "seedhygiene",
	Doc:  "flags math/rand global-state use outside internal/dist (breaks run-to-run determinism)",
	Run:  runSeedHygiene,
}

// seedExemptFuncs are math/rand package-level names that do not touch the
// global source.
var seedExemptFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runSeedHygiene(pass *Pass) {
	if pkgPathHasSuffix(pass.PkgPath, epsilonPackage) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			imported := pkgName.Imported().Path()
			if imported != "math/rand" && imported != "math/rand/v2" {
				return true
			}
			if seedExemptFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel, SeverityError,
				"%s.%s uses math/rand global state; seed a dist.Rand explicitly so runs stay reproducible",
				ident.Name, sel.Sel.Name)
			return true
		})
	}
}
