package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces lock discipline in the concurrent layers:
//
//   - sync primitives (Mutex, RWMutex, WaitGroup, Once, Cond) must never be
//     copied: not passed or returned by value, not copy-assigned, not bound
//     by value in a range clause;
//   - a Lock()/RLock() must be released on every non-panic path: the check
//     walks the function's control-flow graph (cfg.go) from the acquire,
//     and any path that reaches a return without the matching Unlock —
//     immediate, deferred, performed by a closure the path registers, or
//     performed by a callee whose call-graph summary (callgraph.go) says
//     it releases the lock on all paths — is a finding. An early return
//     between Lock and Unlock is exactly such a path;
//   - `defer mu.Lock()` is flagged outright — it acquires at function exit
//     and deadlocks the next caller.
//
// Panicking paths are exempt by construction: panic terminators have no
// CFG successors, matching the convention that a panic unwinds through
// the deferred unlocks or tears down the process.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags copied sync primitives and locks not released on every non-panic path",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fn)
			if fn.Body != nil {
				checkLockRelease(pass, fn.Body)
			}
		}
	}
	for _, file := range pass.Files {
		checkFuncLitSignatures(pass, file)
		// Each function literal gets its own path analysis: its body is
		// its own control-flow universe, released (or not) on its own
		// schedule.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLockRelease(pass, lit.Body)
			}
			return true
		})
	}
}

// --- copy detection -------------------------------------------------------

// syncPrimitives are the sync types that must not be copied after first use.
var syncPrimitives = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsSyncPrimitive reports whether t holds a sync primitive by value,
// directly or through struct fields and arrays.
func containsSyncPrimitive(t types.Type) bool {
	return containsSyncPrim(t, map[types.Type]bool{})
}

func containsSyncPrim(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && syncPrimitives[named.Obj().Name()] {
			return true
		}
		return containsSyncPrim(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncPrim(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncPrim(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value transfer of sync primitives.
func checkLockCopies(pass *Pass, fn *ast.FuncDecl) {
	checkFieldList(pass, fn.Type.Params, "parameter")
	checkFieldList(pass, fn.Type.Results, "result")
	if fn.Recv != nil {
		checkFieldList(pass, fn.Recv, "receiver")
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for _, rhs := range node.Rhs {
				if !isValueRead(rhs) {
					continue
				}
				if containsSyncPrimitive(pass.Info.TypeOf(rhs)) {
					pass.Reportf(rhs, SeverityError,
						"assignment copies a value containing a sync primitive; share it by pointer")
				}
			}
		case *ast.RangeStmt:
			if node.Value != nil && containsSyncPrimitive(pass.Info.TypeOf(node.Value)) {
				pass.Reportf(node.Value, SeverityError,
					"range clause copies a value containing a sync primitive per iteration; range over indices or pointers")
			}
		}
		return true
	})
}

// checkFuncLitSignatures applies the parameter/result copy rules to
// function literals too.
func checkFuncLitSignatures(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkFieldList(pass, lit.Type.Params, "parameter")
		checkFieldList(pass, lit.Type.Results, "result")
		return true
	})
}

// checkFieldList flags non-pointer fields whose type carries a sync
// primitive.
func checkFieldList(pass *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsSyncPrimitive(t) {
			pass.Reportf(field, SeverityError,
				"%s passes a sync primitive by value; use a pointer", kind)
		}
	}
}

// isValueRead reports whether the expression reads an existing value (as
// opposed to constructing a fresh one, which is a legal way to obtain a
// zero-valued lock).
func isValueRead(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_" // plain variable read
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	default:
		return false
	}
}

// --- release discipline ---------------------------------------------------

// checkLockRelease enforces path-sensitive Lock/Unlock pairing for one
// function or function-literal body.
func checkLockRelease(pass *Pass, body *ast.BlockStmt) {
	cfg := NewCFG(pass.Fset, body, pass.Info)
	type lockSite struct {
		call  *ast.CallExpr
		recv  string // canonical receiver text, e.g. "s.mu"
		name  string // Lock or RLock
		block *Block
		index int
	}
	var sites []lockSite
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			var call *ast.CallExpr
			deferred := false
			switch s := s.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = s.Call, true
			}
			if call == nil {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !isSyncLockSelector(pass.Info, sel) {
				continue
			}
			// TryLock/TryRLock hold the lock only on one branch of their
			// result; their pairing is not checked.
			if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
				continue
			}
			recv := exprText(pass.Fset, sel.X)
			if deferred {
				pass.Reportf(call, SeverityError,
					"defer %s.%s() acquires the lock at function exit; this deadlocks the next user", recv, sel.Sel.Name)
				continue
			}
			sites = append(sites, lockSite{call: call, recv: recv, name: sel.Sel.Name, block: b, index: i})
		}
	}
	for _, site := range sites {
		want := "Unlock"
		if site.name == "RLock" {
			want = "RUnlock"
		}
		escapes := cfg.EscapesWithout(site.block, site.index+1, func(s ast.Stmt) bool {
			return stmtReleasesLock(pass, s, site.recv, want)
		})
		if escapes {
			pass.Reportf(site.call, SeverityError,
				"%s.%s() is not released on every path: a return is reachable with the lock still held; call %s.%s() (or defer it) before returning",
				site.recv, site.name, site.recv, want)
		}
	}
}

// stmtReleasesLock reports whether executing s releases recv's lock: a
// direct or deferred matching unlock, a closure this statement registers
// or launches that performs the unlock (ownership handed to the closure),
// or a call to a module function whose summary releases the lock on all
// of its own paths.
func stmtReleasesLock(pass *Pass, s ast.Stmt, recv, want string) bool {
	var direct *ast.CallExpr
	switch s := s.(type) {
	case *ast.ExprStmt:
		direct, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		direct = s.Call
	}
	if direct != nil && unlockMatches(pass, direct, recv, want) {
		return true
	}
	released := false
	ast.Inspect(s, func(n ast.Node) bool {
		if released {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && unlockMatches(pass, call, recv, want) {
					released = true
				}
				return !released
			})
			return false
		case *ast.CallExpr:
			sum := pass.Mod.SummaryOf(staticCallee(pass.Info, n))
			if sum == nil {
				return true
			}
			for _, ln := range sum.ReleasesLocks {
				text := ln
				if strings.HasPrefix(ln, "·") {
					// Receiver-relative name: substitute this call's
					// receiver expression.
					sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					text = exprText(pass.Fset, sel.X) + strings.TrimPrefix(ln, "·")
				}
				if text == recv {
					released = true
					return false
				}
			}
		}
		return true
	})
	return released
}

// unlockMatches reports whether call is recv.want() for the tracked lock.
func unlockMatches(pass *Pass, call *ast.CallExpr, recv, want string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == want && isSyncLockSelector(pass.Info, sel) &&
		exprText(pass.Fset, sel.X) == recv
}

// isSyncLockSelector reports whether the selector resolves to a sync
// package lock method (covers embedded mutexes and sync.Locker values).
func isSyncLockSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
		}
	}
	// Fallback: receiver type is (pointer to) a sync primitive.
	t := info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		pkg := named.Obj().Pkg()
		return pkg != nil && pkg.Path() == "sync"
	}
	return false
}

// exprText canonicalizes a receiver expression for matching Lock/Unlock
// pairs (and pool-buffer owners) by printing it back to source text.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
