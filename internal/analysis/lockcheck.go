package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// LockCheck enforces lock discipline in the concurrent layers:
//
//   - sync primitives (Mutex, RWMutex, WaitGroup, Once, Cond) must never be
//     copied: not passed or returned by value, not copy-assigned, not bound
//     by value in a range clause;
//   - a Lock()/RLock() must be released: either the very next statement is
//     the matching `defer Unlock()`, or a matching explicit Unlock exists
//     somewhere in the same function (the common lock-compute-unlock
//     pattern); a Lock with no release in its function is a leak;
//   - `defer mu.Lock()` is flagged outright — it acquires at function exit
//     and deadlocks the next caller.
//
// The release check is intentionally function-scoped: it catches forgotten
// unlocks, not early-return leaks between Lock and Unlock (that remains a
// go-test -race / review concern; see ROADMAP).
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags copied sync primitives and Lock() calls with no release in the same function",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fn)
			if fn.Body != nil {
				checkLockRelease(pass, fn)
			}
		}
	}
	for _, file := range pass.Files {
		checkFuncLitSignatures(pass, file)
	}
}

// --- copy detection -------------------------------------------------------

// syncPrimitives are the sync types that must not be copied after first use.
var syncPrimitives = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsSyncPrimitive reports whether t holds a sync primitive by value,
// directly or through struct fields and arrays.
func containsSyncPrimitive(t types.Type) bool {
	return containsSyncPrim(t, map[types.Type]bool{})
}

func containsSyncPrim(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && syncPrimitives[named.Obj().Name()] {
			return true
		}
		return containsSyncPrim(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncPrim(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncPrim(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value transfer of sync primitives.
func checkLockCopies(pass *Pass, fn *ast.FuncDecl) {
	checkFieldList(pass, fn.Type.Params, "parameter")
	checkFieldList(pass, fn.Type.Results, "result")
	if fn.Recv != nil {
		checkFieldList(pass, fn.Recv, "receiver")
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for _, rhs := range node.Rhs {
				if !isValueRead(rhs) {
					continue
				}
				if containsSyncPrimitive(pass.Info.TypeOf(rhs)) {
					pass.Reportf(rhs, SeverityError,
						"assignment copies a value containing a sync primitive; share it by pointer")
				}
			}
		case *ast.RangeStmt:
			if node.Value != nil && containsSyncPrimitive(pass.Info.TypeOf(node.Value)) {
				pass.Reportf(node.Value, SeverityError,
					"range clause copies a value containing a sync primitive per iteration; range over indices or pointers")
			}
		}
		return true
	})
}

// checkFuncLitSignatures applies the parameter/result copy rules to
// function literals too.
func checkFuncLitSignatures(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkFieldList(pass, lit.Type.Params, "parameter")
		checkFieldList(pass, lit.Type.Results, "result")
		return true
	})
}

// checkFieldList flags non-pointer fields whose type carries a sync
// primitive.
func checkFieldList(pass *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsSyncPrimitive(t) {
			pass.Reportf(field, SeverityError,
				"%s passes a sync primitive by value; use a pointer", kind)
		}
	}
}

// isValueRead reports whether the expression reads an existing value (as
// opposed to constructing a fresh one, which is a legal way to obtain a
// zero-valued lock).
func isValueRead(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_" // plain variable read
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	default:
		return false
	}
}

// --- release discipline ---------------------------------------------------

// lockOp is one Lock/Unlock-family call found in a function body.
type lockOp struct {
	call     *ast.CallExpr
	recv     string // canonical receiver text, e.g. "s.mu"
	name     string // Lock, RLock, Unlock, RUnlock
	deferred bool
	block    *ast.BlockStmt
	index    int // statement index within block (-1 if not a direct statement)
}

// checkLockRelease enforces the Lock/Unlock pairing rules for one function.
func checkLockRelease(pass *Pass, fn *ast.FuncDecl) {
	ops := collectLockOps(pass, fn.Body)
	for _, op := range ops {
		if op.deferred && (op.name == "Lock" || op.name == "RLock") {
			pass.Reportf(op.call, SeverityError,
				"defer %s.%s() acquires the lock at function exit; this deadlocks the next user", op.recv, op.name)
			continue
		}
		if op.deferred || (op.name != "Lock" && op.name != "RLock") {
			continue
		}
		want := "Unlock"
		if op.name == "RLock" {
			want = "RUnlock"
		}
		if nextStmtIsDeferredUnlock(pass, op, want, ops) {
			continue
		}
		if anyExplicitUnlock(op, want, ops) {
			continue
		}
		pass.Reportf(op.call, SeverityError,
			"%s.%s() has no matching %s in this function; the lock leaks on every path", op.recv, op.name, want)
	}
}

// collectLockOps finds all mutex method calls in the body, recording where
// each sits so sibling statements can be examined.
func collectLockOps(pass *Pass, body *ast.BlockStmt) []lockOp {
	var ops []lockOp
	seen := map[*ast.CallExpr]bool{}
	record := func(call *ast.CallExpr, deferred bool, block *ast.BlockStmt, index int) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || seen[call] {
			return
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		default:
			return
		}
		if !isSyncLockMethod(pass, sel) {
			return
		}
		seen[call] = true
		ops = append(ops, lockOp{
			call: call, recv: exprText(pass, sel.X), name: name,
			deferred: deferred, block: block, index: index,
		})
	}
	var walkBlocks func(n ast.Node)
	walkBlocks = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			block, ok := m.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				switch s := stmt.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						record(call, false, block, i)
					}
				case *ast.DeferStmt:
					record(s.Call, true, block, i)
				}
			}
			return true
		})
	}
	walkBlocks(body)
	// Sweep for lock calls in other positions (e.g. inside expressions or
	// go statements) so pairing still sees them.
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			record(call, false, nil, -1)
		}
		return true
	})
	return ops
}

// isSyncLockMethod reports whether the selector resolves to a sync package
// lock method (covers embedded mutexes and sync.Locker values).
func isSyncLockMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	if s, ok := pass.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
		}
	}
	// Fallback: receiver type is (pointer to) a sync primitive.
	t := pass.Info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		pkg := named.Obj().Pkg()
		return pkg != nil && pkg.Path() == "sync"
	}
	return false
}

// nextStmtIsDeferredUnlock reports whether the statement directly after the
// Lock is `defer recv.want()`.
func nextStmtIsDeferredUnlock(pass *Pass, op lockOp, want string, ops []lockOp) bool {
	if op.block == nil || op.index < 0 || op.index+1 >= len(op.block.List) {
		return false
	}
	next, ok := op.block.List[op.index+1].(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(next.Call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == want && exprText(pass, sel.X) == op.recv
}

// anyExplicitUnlock reports whether some op releases the same receiver.
func anyExplicitUnlock(op lockOp, want string, ops []lockOp) bool {
	for _, other := range ops {
		if other.name == want && other.recv == op.recv {
			return true
		}
	}
	return false
}

// exprText canonicalizes a receiver expression for matching Lock/Unlock
// pairs.
func exprText(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
