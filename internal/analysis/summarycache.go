package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
)

// Summary cache. Function summaries are a whole-module fixpoint
// (callgraph.go): a summary can depend on any other function in the
// module, so there is no sound per-package or per-function invalidation —
// the cache is keyed on the Go version plus the exact set and content
// hashes of every analyzed source file, and any mismatch recomputes
// everything. That is still a win because the fixpoint plus its CFG
// builds dominate warm-cache runs once type-checking is served from the
// export cache (cache.go), and "any edit rebuilds all summaries" is the
// same all-or-nothing contract the export cache already uses.
//
// Summaries are stored by types.Func.FullName(). Only non-empty summaries
// are written: absence is recoverable, because a function whose final
// summary is empty has an empty seed too (facts are monotone), so the
// loader re-seeds missing functions from their signature and body alone.
// Multiple init functions share one FullName; their keys are dropped at
// write time and re-seeded at load time for the same reason.

// summaryCacheName is the summaries index inside the cache directory.
const summaryCacheName = "summaries.json"

// summaryCacheFormat versions the FuncSummary wire shape. Bump it when a
// summary field is added: source hashes cannot see analyzer changes, so
// without the bump a cache written by an older binary would load
// summaries that silently lack the new facts.
// 2: added ReturnsPooled.
const summaryCacheFormat = 2

// summaryCacheFile is the on-disk shape of the summary cache.
type summaryCacheFile struct {
	Format    int                     `json:"format"`
	GoVersion string                  `json:"go_version"`
	Files     map[string]string       `json:"files"`     // root-relative path → sha256
	Summaries map[string]*FuncSummary `json:"summaries"` // types.Func.FullName → non-empty summary
}

// BuildModuleCached is the disk-backed BuildModule: when the cache under
// root is valid for the current Go version and source files it loads
// summaries instead of running the interprocedural fixpoint; otherwise it
// computes them and refreshes the cache. Cache trouble of any kind (an
// unreadable file, a foreign root) silently degrades to a fresh compute.
func BuildModuleCached(pkgs []*Package, root string) *Module {
	if root == "" {
		return BuildModule(pkgs)
	}
	files, err := moduleFileHashes(pkgs, root)
	if err != nil {
		return BuildModule(pkgs)
	}
	cachePath := filepath.Join(root, cacheDirName, summaryCacheName)
	if cached := loadSummaryCache(cachePath, files); cached != nil {
		m := newModuleGraph(pkgs)
		for _, n := range m.Graph.order {
			if s, ok := cached.Summaries[n.Func.FullName()]; ok && s != nil {
				m.summaries[n.Func] = s
			} else {
				m.summaries[n.Func] = m.seedSummary(n)
			}
		}
		m.FromCache = true
		return m
	}
	m := BuildModule(pkgs)
	writeSummaryCache(cachePath, files, m)
	return m
}

// moduleFileHashes hashes every source file of the loaded packages,
// keyed by root-relative path.
func moduleFileHashes(pkgs []*Package, root string) (map[string]string, error) {
	files := map[string]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.File(f.Pos()).Name()
			rel, err := filepath.Rel(root, name)
			if err != nil {
				rel = name
			}
			if _, done := files[rel]; done {
				continue
			}
			sum, err := fileSHA256(name)
			if err != nil {
				return nil, err
			}
			files[rel] = sum
		}
	}
	return files, nil
}

// loadSummaryCache reads the cache and returns it only if it is valid for
// the current Go version and exactly the given file set.
func loadSummaryCache(path string, files map[string]string) *summaryCacheFile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var c summaryCacheFile
	if err := json.Unmarshal(data, &c); err != nil {
		return nil
	}
	if c.Format != summaryCacheFormat || c.GoVersion != runtime.Version() || len(c.Files) != len(files) {
		return nil
	}
	for rel, sum := range files {
		if c.Files[rel] != sum {
			return nil
		}
	}
	return &c
}

// writeSummaryCache persists the non-empty summaries. Write failures are
// ignored — the cache is an optimization, not a requirement.
func writeSummaryCache(path string, files map[string]string, m *Module) {
	c := &summaryCacheFile{
		Format:    summaryCacheFormat,
		GoVersion: runtime.Version(),
		Files:     files,
		Summaries: map[string]*FuncSummary{},
	}
	dup := map[string]bool{}
	for _, n := range m.Graph.order {
		name := n.Func.FullName()
		if _, seen := c.Summaries[name]; seen {
			dup[name] = true
			continue
		}
		if s := m.summaries[n.Func]; s != nil && !s.empty() {
			c.Summaries[name] = s
		} else {
			c.Summaries[name] = nil // placeholder so duplicates are detected
		}
	}
	for name, s := range c.Summaries {
		if dup[name] || s == nil {
			delete(c.Summaries, name)
		}
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	_ = os.WriteFile(path, data, 0o644) //modelcheck:ignore errdrop — a failed cache write only costs the next run a recompute
}
