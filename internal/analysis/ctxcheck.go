package analysis

import (
	"go/ast"
	"go/types"
)

// CtxCheck flags functions and function literals that accept a named
// context.Context parameter but neither consult it (ctx.Done, ctx.Err,
// ctx.Deadline, ctx.Value) nor forward it (as a call argument, return
// value, assignment source, composite-literal element, or channel send).
// Such a signature promises cancellation support that the body does not
// deliver: callers racing a deadline believe the work will stop, and in
// the rpc/fleet layers that silent promise turns a cancelled request into
// a full-length one. A parameter that is deliberately unused should be
// named _ — that reads as an explicit opt-out and is not reported. Uses
// that neither consult nor forward (e.g. a nil comparison alone) do not
// count as honoring the context.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "flags functions accepting a context.Context that neither consult nor forward it",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkCtxParams(pass, node.Type, node.Body, "function "+node.Name.Name)
			case *ast.FuncLit:
				checkCtxParams(pass, node.Type, node.Body, "function literal")
			}
			return true
		})
	}
}

// checkCtxParams reports each named context.Context parameter that the
// body neither consults nor forwards.
func checkCtxParams(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, label string) {
	if body == nil || ftype.Params == nil {
		return
	}
	for _, field := range ftype.Params.List {
		if !isContextType(pass.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if !ctxHonored(pass, body, obj) {
				pass.Reportf(name, SeverityError,
					"%s accepts context.Context %q but neither consults ctx.Done/ctx.Err nor forwards it; honor cancellation, forward the context, or rename the parameter to _",
					label, name.Name)
			}
		}
	}
}

// ctxHonored reports whether the body consults the context parameter
// (selecting any of its methods) or forwards it onward.
func ctxHonored(pass *Pass, body *ast.BlockStmt, obj *types.Var) bool {
	honored := false
	isParam := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if honored {
			return false
		}
		switch node := n.(type) {
		case *ast.SelectorExpr:
			// context.Context's only methods are Done, Err, Deadline, and
			// Value — any selection on the parameter is a consultation
			// (method values included).
			if isParam(node.X) {
				honored = true
			}
		case *ast.CallExpr:
			for _, arg := range node.Args {
				if isParam(arg) {
					honored = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if isParam(res) {
					honored = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				if isParam(rhs) {
					honored = true
				}
			}
		case *ast.ValueSpec:
			for _, v := range node.Values {
				if isParam(v) {
					honored = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if isParam(elt) {
					honored = true
				}
			}
		case *ast.SendStmt:
			if isParam(node.Value) {
				honored = true
			}
		}
		return !honored
	})
	return honored
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
