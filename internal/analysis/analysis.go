// Package analysis is a small, dependency-free static-analysis framework
// for this repository, built directly on go/ast, go/parser, and go/types.
//
// The Accelerometer reproduction lives or dies on a handful of invariants
// that ordinary Go tooling does not check: float comparisons must go
// through epsilon helpers so model projections are stable, parameter
// structs must be validated before they reach the model, randomness must
// flow through the seeded generator in internal/dist so characterization
// runs are reproducible, the concurrent rpc/sim layers must follow
// strict lock discipline, pooled buffers on the zero-alloc hot path must
// obey their get/put ownership contract, and code that accepts a
// context.Context must actually honor cancellation. Each invariant is
// encoded as an Analyzer; the cmd/modelcheck runner loads every package in
// the module, type-checks it, and reports findings with file:line
// positions.
//
// Analyzers come in two tiers. The syntax-level checks walk one function
// at a time. The flow-sensitive checks (lockcheck's release rule,
// poolcheck, paramvalidate's helper chasing) run on the shared dataflow
// layer: a basic-block CFG per function body (cfg.go) and a module-wide
// call graph with per-function summaries (callgraph.go), which
// RunAnalyzers builds once per run and hands to every pass via Pass.Mod.
//
// Deliberate exceptions are annotated in source with a directive comment:
//
//	//modelcheck:ignore floatcmp          — suppress one analyzer
//	//modelcheck:ignore floatcmp,errdrop  — suppress several
//	//modelcheck:ignore                   — suppress all analyzers
//
// A directive suppresses findings on its own line (trailing comment) or,
// when it stands alone on a line, findings on the line directly below it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Severity ranks a finding. Every finding fails the modelcheck gate; the
// severity is informational, separating invariant violations (SeverityError)
// from style-level drift (SeverityWarning).
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Severity Severity       `json:"severity"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s", f.File, f.Line, f.Column, f.Severity, f.Analyzer, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string

	// Mod is the module-wide call graph and function summaries
	// (callgraph.go), shared by every pass of one RunAnalyzers call so
	// flow-sensitive analyzers can resolve cross-function behavior. Nil
	// when an analyzer is driven outside RunAnalyzers; SummaryOf/NodeOf
	// degrade to "unknown callee" on a nil Module.
	Mod *Module

	analyzer string
	findings []Finding
}

// Reportf records a finding at the given node's position.
func (p *Pass) Reportf(node ast.Node, sev Severity, format string, args ...interface{}) {
	pos := p.Fset.Position(node.Pos())
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Column:   pos.Column,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		ErrDrop,
		ParamValidate,
		SeedHygiene,
		LockCheck,
		Shadow,
		CtxCheck,
		PoolCheck,
	}
}

// ByName resolves a comma-separated analyzer selection; an empty selection
// means the full suite.
func ByName(selection string) ([]*Analyzer, error) {
	if strings.TrimSpace(selection) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective matches "//modelcheck:ignore" with an optional analyzer
// list, optionally followed by a dash-separated explanation:
//
//	//modelcheck:ignore floatcmp — why this exact comparison is deliberate
var ignoreDirective = regexp.MustCompile(`^//\s*modelcheck:ignore(?:[ \t]+([A-Za-z0-9_, \t]*[A-Za-z0-9_]))?(?:[ \t]*(?:—|–|--|-)[^\n]*)?[ \t]*$`)

// ignoreSet maps file name → line → analyzer names suppressed on that line
// (the empty string key means "all analyzers").
type ignoreSet map[string]map[int]map[string]bool

// buildIgnores scans a package's comments for modelcheck:ignore directives.
// A directive covers its own line; a directive that is the only thing on
// its line additionally covers the following line.
func buildIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	add := func(file string, line int, names []string) {
		byLine := set[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			set[file] = byLine
		}
		byName := byLine[line]
		if byName == nil {
			byName = map[string]bool{}
			byLine[line] = byName
		}
		if len(names) == 0 {
			byName[""] = true
		}
		for _, n := range names {
			byName[n] = true
		}
	}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, names)
				// A standalone directive (nothing but the comment on its
				// line) also covers the next source line.
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					add(pos.Filename, pos.Line+1, names)
				}
			}
		}
	}
	return set
}

// onlyCommentOnLine reports whether no non-comment token of the file starts
// on the comment's line before the comment itself.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	only := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		if fset.Position(n.End()).Line < line || fset.Position(n.Pos()).Line > line {
			// Subtrees entirely above or below the line need no visit,
			// but their siblings might span it, so keep walking.
			return true
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		default:
			if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
				only = false
				return false
			}
		}
		return true
	})
	return only
}

// suppressed reports whether a finding is covered by an ignore directive.
func (s ignoreSet) suppressed(f Finding) bool {
	byLine := s[f.File]
	if byLine == nil {
		return false
	}
	byName := byLine[f.Line]
	if byName == nil {
		return false
	}
	return byName[""] || byName[f.Analyzer]
}

// RunAnalyzers applies each analyzer to each loaded package, filters
// findings through the ignore directives, and returns the survivors sorted
// by position. The module call graph and summaries are built in-memory;
// RunAnalyzersWithModule accepts a prebuilt (possibly cache-backed) one.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunAnalyzersWithModule(pkgs, analyzers, BuildModule(pkgs))
}

// RunAnalyzersWithModule is RunAnalyzers with a caller-supplied Module,
// letting cmd/modelcheck reuse cached call-graph summaries.
func RunAnalyzersWithModule(pkgs []*Package, analyzers []*Analyzer, mod *Module) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := buildIgnores(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				Mod:      mod,
				analyzer: a.Name,
			}
			a.Run(pass)
			for _, f := range pass.findings {
				if !ignores.suppressed(f) {
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// inTestFile reports whether the node lies in a _test.go file. Several
// analyzers carry documented test-file exemption rules (floatcmp's
// golden-value rule, errdrop's teardown rule) so `modelcheck -tests`
// can gate test code without blanket annotations.
func inTestFile(pass *Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// errorType is the universe error interface, used by analyzers to spot
// error-typed results.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
