package pprofx

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// spin burns CPU until deadline with a data dependency the compiler keeps.
//
//go:noinline
func spin(deadline time.Time, sink *uint64) {
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			*sink = *sink*2654435761 + uint64(i)
		}
	}
}

func TestParseRealCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile (already active?): %v", err)
	}
	var sink uint64
	pprof.Do(context.Background(), pprof.Labels("service", "pprofx-test", "functionality", "io"),
		func(context.Context) {
			spin(time.Now().Add(400*time.Millisecond), &sink)
		})
	pprof.StopCPUProfile()
	_ = sink

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 || len(p.Samples) == 0 {
		t.Fatalf("parsed profile empty: %d sample types, %d samples", len(p.SampleTypes), len(p.Samples))
	}
	cpuIdx, err := p.ValueIndex("cpu")
	if err != nil {
		t.Fatalf("ValueIndex(cpu): %v (types %v)", err, p.SampleTypes)
	}
	if p.Total(cpuIdx) <= 0 {
		t.Fatal("profile has zero total cpu time")
	}
	if p.PeriodType.Type != "cpu" || p.Period <= 0 {
		t.Errorf("period = %d %+v, want positive cpu period", p.Period, p.PeriodType)
	}

	var labeled, sawSpin bool
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			t.Fatal("sample with empty stack")
		}
		if s.Labels["service"] == "pprofx-test" && s.Labels["functionality"] == "io" {
			labeled = true
			for _, f := range s.Stack {
				if strings.Contains(f, "pprofx.spin") {
					sawSpin = true
				}
			}
		}
	}
	if !labeled {
		t.Fatal("no sample carried the pprof labels set around the busy loop")
	}
	if !sawSpin {
		t.Fatal("no labeled sample resolved a stack through pprofx.spin")
	}
}

// --- synthetic profile construction -------------------------------------

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, num, wire int) []byte {
	return appendVarint(b, uint64(num)<<3|uint64(wire))
}

func appendBytesField(b []byte, num int, body []byte) []byte {
	b = appendTag(b, num, wireBytes)
	b = appendVarint(b, uint64(len(body)))
	return append(b, body...)
}

func appendVarintField(b []byte, num int, v uint64) []byte {
	return appendVarint(appendTag(b, num, wireVarint), v)
}

func valueType(typ, unit uint64) []byte {
	return appendVarintField(appendVarintField(nil, 1, typ), 2, unit)
}

// syntheticProfile builds a two-sample profile exercising packed and
// unpacked repeated fields, inline line expansion, string and numeric
// labels, and unknown fields.
func syntheticProfile() []byte {
	// String table: index 0 must be "".
	table := []string{"", "samples", "count", "cpu", "nanoseconds",
		"main.leaf", "main.mid", "main.root", "service", "web", "weight"}

	var p []byte
	p = appendBytesField(p, 1, valueType(1, 2)) // samples/count
	p = appendBytesField(p, 1, valueType(3, 4)) // cpu/nanoseconds

	// Sample 1: packed location ids [1 2], packed values [3 30], label
	// service=web, numeric label weight=7.
	var s1 []byte
	s1 = appendBytesField(s1, 1, appendVarint(appendVarint(nil, 1), 2))
	s1 = appendBytesField(s1, 2, appendVarint(appendVarint(nil, 3), 30))
	var lbl []byte
	lbl = appendVarintField(lbl, 1, 8) // key "service"
	lbl = appendVarintField(lbl, 2, 9) // str "web"
	s1 = appendBytesField(s1, 3, lbl)
	var nlbl []byte
	nlbl = appendVarintField(nlbl, 1, 10) // key "weight"
	nlbl = appendVarintField(nlbl, 3, 7)  // num 7
	s1 = appendBytesField(s1, 3, nlbl)
	p = appendBytesField(p, 2, s1)

	// Sample 2: unpacked repeated encoding of the same fields, no labels.
	var s2 []byte
	s2 = appendVarintField(s2, 1, 2)
	s2 = appendVarintField(s2, 2, 1)
	s2 = appendVarintField(s2, 2, 10)
	s2 = appendVarintField(s2, 999, 42) // unknown field: must be skipped
	p = appendBytesField(p, 2, s2)

	// Location 1: two lines (leaf inline "main.leaf" then "main.mid").
	var loc1 []byte
	loc1 = appendVarintField(loc1, 1, 1)
	loc1 = appendBytesField(loc1, 4, appendVarintField(nil, 1, 1))
	loc1 = appendBytesField(loc1, 4, appendVarintField(nil, 1, 2))
	p = appendBytesField(p, 4, loc1)
	// Location 2: "main.root".
	var loc2 []byte
	loc2 = appendVarintField(loc2, 1, 2)
	loc2 = appendBytesField(loc2, 4, appendVarintField(nil, 1, 3))
	p = appendBytesField(p, 4, loc2)

	// Functions.
	fn := func(id, name uint64) []byte {
		return appendVarintField(appendVarintField(nil, 1, id), 2, name)
	}
	p = appendBytesField(p, 5, fn(1, 5)) // main.leaf
	p = appendBytesField(p, 5, fn(2, 6)) // main.mid
	p = appendBytesField(p, 5, fn(3, 7)) // main.root

	for _, s := range table {
		p = appendBytesField(p, 6, []byte(s))
	}
	p = appendVarintField(p, 9, 1234)            // time_nanos
	p = appendVarintField(p, 10, 5678)           // duration_nanos
	p = appendBytesField(p, 11, valueType(3, 4)) // period type cpu/ns
	p = appendVarintField(p, 12, 10000000)       // period
	return p
}

func TestParseSynthetic(t *testing.T) {
	p, err := Parse(syntheticProfile())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	wantTypes := []ValueType{{"samples", "count"}, {"cpu", "nanoseconds"}}
	if len(p.SampleTypes) != 2 || p.SampleTypes[0] != wantTypes[0] || p.SampleTypes[1] != wantTypes[1] {
		t.Fatalf("SampleTypes = %v, want %v", p.SampleTypes, wantTypes)
	}
	if p.Period != 10000000 || p.PeriodType != (ValueType{"cpu", "nanoseconds"}) {
		t.Errorf("period = %d %+v", p.Period, p.PeriodType)
	}
	if p.TimeNanos != 1234 || p.DurationNanos != 5678 {
		t.Errorf("time/duration = %d/%d, want 1234/5678", p.TimeNanos, p.DurationNanos)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(p.Samples))
	}

	s1 := p.Samples[0]
	wantStack := []string{"main.leaf", "main.mid", "main.root"}
	if len(s1.Stack) != 3 || s1.Stack[0] != wantStack[0] || s1.Stack[1] != wantStack[1] || s1.Stack[2] != wantStack[2] {
		t.Errorf("sample 1 stack = %v, want %v", s1.Stack, wantStack)
	}
	if len(s1.Values) != 2 || s1.Values[0] != 3 || s1.Values[1] != 30 {
		t.Errorf("sample 1 values = %v, want [3 30]", s1.Values)
	}
	if s1.Labels["service"] != "web" {
		t.Errorf("sample 1 labels = %v, want service=web", s1.Labels)
	}
	if s1.NumLabels["weight"] != 7 {
		t.Errorf("sample 1 num labels = %v, want weight=7", s1.NumLabels)
	}

	s2 := p.Samples[1]
	if len(s2.Stack) != 1 || s2.Stack[0] != "main.root" {
		t.Errorf("sample 2 stack = %v, want [main.root]", s2.Stack)
	}
	if len(s2.Values) != 2 || s2.Values[0] != 1 || s2.Values[1] != 10 {
		t.Errorf("sample 2 values = %v, want [1 10]", s2.Values)
	}
	if s2.Labels != nil || s2.NumLabels != nil {
		t.Errorf("sample 2 has labels %v / %v, want none", s2.Labels, s2.NumLabels)
	}

	cpuIdx, err := p.ValueIndex("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Total(cpuIdx); got != 40 {
		t.Errorf("Total(cpu) = %d, want 40", got)
	}
	if _, err := p.ValueIndex("wall"); err == nil {
		t.Error("ValueIndex(wall) should fail")
	}
}

func TestParseGzipRoundTrip(t *testing.T) {
	raw := syntheticProfile()
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(gz.Bytes())
	if err != nil {
		t.Fatalf("Parse(gzipped): %v", err)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("gzipped parse: %d samples, want 2", len(p.Samples))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty input":         {},
		"truncated varint":    {0x80},
		"field number zero":   {0x00},
		"truncated gzip":      {0x1f, 0x8b, 0x08},
		"length overrun":      appendVarint(appendTag(nil, 2, wireBytes), 100),
		"no string table":     appendVarintField(nil, 12, 1),
		"bad string index":    appendBytesField(appendBytesField(nil, 6, nil), 1, valueType(99, 0)),
		"unknown location id": appendBytesField(appendBytesField(nil, 6, nil), 2, appendVarintField(nil, 1, 77)),
		"unknown function id": appendBytesField(appendBytesField(nil, 6, nil), 4,
			appendBytesField(appendVarintField(nil, 1, 1), 4, appendVarintField(nil, 1, 9))),
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestParseSkipsFixedWidthFields(t *testing.T) {
	var p []byte
	p = appendBytesField(p, 6, nil) // string table [""]
	p = appendTag(p, 50, wireFixed64)
	p = append(p, 1, 2, 3, 4, 5, 6, 7, 8)
	p = appendTag(p, 51, wireFixed32)
	p = append(p, 1, 2, 3, 4)
	if _, err := Parse(p); err != nil {
		t.Fatalf("Parse with fixed-width unknown fields: %v", err)
	}
}
