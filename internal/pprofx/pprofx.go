// Package pprofx parses Go's gzipped-protobuf CPU profiles without any
// dependency beyond the standard library. The runtime's profiler emits
// profile.proto (the pprof wire format); this package decodes the subset
// the repository's live-attribution pipeline needs — samples with resolved
// function-name stacks, sample values, and pprof labels — using a hand-
// rolled varint/field decoder instead of a protobuf code generator.
//
// profile.proto is a stable, append-only format, and the profiler only
// reads it, so a ~300-line decoder is cheaper than a generated dependency
// and keeps the repo's no-third-party-module rule intact. Unknown fields
// are skipped, so profiles from newer runtimes still parse.
package pprofx

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ValueType names one sample value dimension, e.g. {Type: "cpu", Unit:
// "nanoseconds"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one profile sample with its call stack resolved to function
// names.
type Sample struct {
	// Stack holds function names leaf-first (Stack[0] is the sampled
	// function; inline expansions appear as separate entries).
	Stack []string
	// Values holds one value per Profile.SampleTypes entry; for a CPU
	// profile: [sample count, cpu nanoseconds].
	Values []int64
	// Labels holds the sample's string-valued pprof labels.
	Labels map[string]string
	// NumLabels holds the sample's numeric pprof labels.
	NumLabels map[string]int64
}

// Profile is a decoded CPU (or other pprof-format) profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	PeriodType    ValueType
	Period        int64
	TimeNanos     int64
	DurationNanos int64
}

// ValueIndex returns the index into Sample.Values for the named sample
// type ("cpu", "samples", ...), or an error if the profile has no such
// dimension.
func (p *Profile) ValueIndex(typ string) (int, error) {
	for i, vt := range p.SampleTypes {
		if vt.Type == typ {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pprofx: profile has no %q sample type", typ)
}

// Total sums the given value dimension across all samples.
func (p *Profile) Total(valueIndex int) int64 {
	var total int64
	for _, s := range p.Samples {
		if valueIndex < len(s.Values) {
			total += s.Values[valueIndex]
		}
	}
	return total
}

// Parse decodes a pprof profile. Gzipped input (what runtime/pprof writes)
// is detected by magic number and decompressed; raw protobuf also parses.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprofx: gzip header: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("pprofx: decompress: %w", err)
		}
		data = raw
	}
	return parseUncompressed(data)
}

// Protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// decoder walks one protobuf message body.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) done() bool { return d.pos >= len(d.data) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, fmt.Errorf("pprofx: truncated varint at offset %d", d.pos)
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pprofx: varint longer than 10 bytes at offset %d", d.pos)
}

// field reads the next field tag, returning the field number and wire type.
func (d *decoder) field() (num int, wire int, err error) {
	tag, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	if tag>>3 == 0 {
		return 0, 0, fmt.Errorf("pprofx: field number 0 at offset %d", d.pos)
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads a length-delimited payload.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("pprofx: length %d exceeds remaining %d bytes", n, len(d.data)-d.pos)
	}
	out := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// skip discards one field value of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFixed64:
		if len(d.data)-d.pos < 8 {
			return fmt.Errorf("pprofx: truncated fixed64 at offset %d", d.pos)
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytes()
		return err
	case wireFixed32:
		if len(d.data)-d.pos < 4 {
			return fmt.Errorf("pprofx: truncated fixed32 at offset %d", d.pos)
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("pprofx: unsupported wire type %d", wire)
	}
}

// repeatedVarints decodes a repeated integer field that may be packed
// (wireBytes) or unpacked (wireVarint), appending to dst.
func (d *decoder) repeatedVarints(wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := d.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	}
	if wire != wireBytes {
		return dst, fmt.Errorf("pprofx: repeated int field has wire type %d", wire)
	}
	body, err := d.bytes()
	if err != nil {
		return dst, err
	}
	sub := decoder{data: body}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// Raw per-message intermediates: samples reference locations, functions,
// and the string table by ID/index, and the writer may emit those tables
// after the samples, so resolution happens in a second pass.

type rawValueType struct{ typ, unit int64 }

type rawLabel struct{ key, str, num int64 }

type rawSample struct {
	locIDs []uint64
	values []int64
	labels []rawLabel
}

type rawLine struct{ functionID uint64 }

type rawLocation struct {
	id    uint64
	lines []rawLine
}

type rawFunction struct {
	id   uint64
	name int64
}

func parseValueType(body []byte) (rawValueType, error) {
	d := decoder{data: body}
	var vt rawValueType
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			v, err := d.varint()
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case 2:
			v, err := d.varint()
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseLabel(body []byte) (rawLabel, error) {
	d := decoder{data: body}
	var l rawLabel
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1, 2, 3:
			v, err := d.varint()
			if err != nil {
				return l, err
			}
			switch num {
			case 1:
				l.key = int64(v)
			case 2:
				l.str = int64(v)
			case 3:
				l.num = int64(v)
			}
		default:
			if err := d.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseSample(body []byte) (rawSample, error) {
	d := decoder{data: body}
	var s rawSample
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id, repeated uint64
			if s.locIDs, err = d.repeatedVarints(wire, s.locIDs); err != nil {
				return s, err
			}
		case 2: // value, repeated int64
			var vals []uint64
			if vals, err = d.repeatedVarints(wire, nil); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		case 3: // label, repeated Label
			body, err := d.bytes()
			if err != nil {
				return s, err
			}
			l, err := parseLabel(body)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLocation(body []byte) (rawLocation, error) {
	d := decoder{data: body}
	var loc rawLocation
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1: // id
			if loc.id, err = d.varint(); err != nil {
				return loc, err
			}
		case 4: // line, repeated Line
			body, err := d.bytes()
			if err != nil {
				return loc, err
			}
			ld := decoder{data: body}
			var line rawLine
			for !ld.done() {
				lnum, lwire, err := ld.field()
				if err != nil {
					return loc, err
				}
				if lnum == 1 {
					if line.functionID, err = ld.varint(); err != nil {
						return loc, err
					}
				} else if err := ld.skip(lwire); err != nil {
					return loc, err
				}
			}
			loc.lines = append(loc.lines, line)
		default:
			if err := d.skip(wire); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func parseFunction(body []byte) (rawFunction, error) {
	d := decoder{data: body}
	var fn rawFunction
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return fn, err
		}
		switch num {
		case 1: // id
			if fn.id, err = d.varint(); err != nil {
				return fn, err
			}
		case 2: // name, string table index
			v, err := d.varint()
			if err != nil {
				return fn, err
			}
			fn.name = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return fn, err
			}
		}
	}
	return fn, nil
}

func parseUncompressed(data []byte) (*Profile, error) {
	d := decoder{data: data}
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   []rawLocation
		functions   []rawFunction
		strings     []string
		periodType  rawValueType
		p           = &Profile{}
	)
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			locations = append(locations, loc)
		case 5: // function
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			fn, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			functions = append(functions, fn)
		case 6: // string_table
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strings = append(strings, string(body))
		case 9: // time_nanos
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			if periodType, err = parseValueType(body); err != nil {
				return nil, err
			}
		case 12: // period
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	if len(strings) == 0 {
		return nil, fmt.Errorf("pprofx: profile has no string table")
	}

	str := func(idx int64) (string, error) {
		if idx < 0 || idx >= int64(len(strings)) {
			return "", fmt.Errorf("pprofx: string index %d out of range (table size %d)", idx, len(strings))
		}
		return strings[idx], nil
	}

	var err error
	if p.PeriodType.Type, err = str(periodType.typ); err != nil {
		return nil, err
	}
	if p.PeriodType.Unit, err = str(periodType.unit); err != nil {
		return nil, err
	}
	p.SampleTypes = make([]ValueType, len(sampleTypes))
	for i, vt := range sampleTypes {
		if p.SampleTypes[i].Type, err = str(vt.typ); err != nil {
			return nil, err
		}
		if p.SampleTypes[i].Unit, err = str(vt.unit); err != nil {
			return nil, err
		}
	}

	funcNames := make(map[uint64]string, len(functions))
	for _, fn := range functions {
		name, err := str(fn.name)
		if err != nil {
			return nil, err
		}
		funcNames[fn.id] = name
	}
	// A location expands to one frame per line (inlining), leaf-first as
	// profile.proto specifies.
	locFrames := make(map[uint64][]string, len(locations))
	for _, loc := range locations {
		frames := make([]string, 0, len(loc.lines))
		for _, line := range loc.lines {
			name, ok := funcNames[line.functionID]
			if !ok {
				return nil, fmt.Errorf("pprofx: location %d references unknown function %d", loc.id, line.functionID)
			}
			frames = append(frames, name)
		}
		locFrames[loc.id] = frames
	}

	p.Samples = make([]Sample, 0, len(samples))
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, id := range rs.locIDs {
			frames, ok := locFrames[id]
			if !ok {
				return nil, fmt.Errorf("pprofx: sample references unknown location %d", id)
			}
			s.Stack = append(s.Stack, frames...)
		}
		for _, l := range rs.labels {
			key, err := str(l.key)
			if err != nil {
				return nil, err
			}
			if l.str != 0 {
				val, err := str(l.str)
				if err != nil {
					return nil, err
				}
				if s.Labels == nil {
					s.Labels = make(map[string]string)
				}
				s.Labels[key] = val
			} else {
				if s.NumLabels == nil {
					s.NumLabels = make(map[string]int64)
				}
				s.NumLabels[key] = l.num
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}
