package topology

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Topology shutdown soak: the multi-tier twin of the rpc package's
// batcher connect-storm test. Concurrent callers drive the three-tier
// graph while random context cancellations land mid-request at every
// depth — some cancel before the root handler runs, some while a
// mid-tier fan-out is in flight — and then the whole runner is torn
// down while traffic may still be draining. Run under -race (as
// scripts/check.sh does) this is the topology driver's data-race
// canary. Invariants:
//
//   - every call either succeeds or fails with an error — no hangs
//     (the test itself would time out);
//   - Close is idempotent and never double-closes a server, pool, or
//     listener (a double close would surface as an error or panic);
//   - after teardown the goroutine count settles back to baseline: no
//     leaked handler fan-out goroutines, pool waiters, or serve loops.
func TestTopologySoakCancellations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	func() {
		r := startRunner(t, webSpec, fastConfig(nil))

		const (
			goroutines   = 8
			callsPerGoro = 25
		)
		var succeeded, failed atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g))) //modelcheck:ignore seedhygiene — deterministic per-goroutine stream for reproducibility
				for i := 0; i < callsPerGoro; i++ {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if rng.Intn(2) == 0 {
						// A deadline in the same range as a request's
						// multi-hop latency: cancellations land at
						// every tier, including mid-fan-out.
						ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
					}
					if _, err := r.Call(ctx, []byte{byte(g), byte(i)}); err != nil {
						failed.Add(1)
					} else {
						succeeded.Add(1)
					}
					cancel()
				}
			}(g)
		}
		wg.Wait()

		total := int64(goroutines * callsPerGoro)
		if got := succeeded.Load() + failed.Load(); got != total {
			t.Errorf("accounted for %d calls, want %d", got, total)
		}
		if succeeded.Load() == 0 {
			t.Error("no call survived; cancellation rate swamped the soak")
		}
		t.Logf("soak: %d succeeded, %d cancelled/failed", succeeded.Load(), failed.Load())
		if err := r.ServeErr(); err != nil {
			t.Errorf("serve error during soak: %v", err)
		}

		// Tear down explicitly (Cleanup will Close again — the second
		// Close must be an idempotent no-op, not a double close).
		if err := r.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}()

	// Goroutine-leak delta: poll until the count settles back to
	// baseline (small slack for runtime background goroutines).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTopologySoakCloseUnderLoad closes the runner while an open-loop
// generator is still issuing: in-flight and not-yet-issued requests must
// resolve as errors (or successes), never hang, and teardown must stay
// leak-free.
func TestTopologySoakCloseUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	func() {
		r := startRunner(t, webSpec, fastConfig(nil))
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan error, 1)
		go func() {
			_, err := r.RunOpenLoop(ctx, LoadConfig{QPS: 2000, Requests: 4000})
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		if err := r.Close(); err != nil {
			t.Fatalf("close under load: %v", err)
		}
		select {
		case <-done:
			// Cancellation mid-run may or may not surface as an error
			// depending on how many requests had already resolved; the
			// invariant is that the generator returns at all.
		case <-time.After(10 * time.Second):
			t.Fatal("open-loop generator hung after Close")
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
