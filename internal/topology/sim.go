package topology

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/record"
	"repro/internal/telemetry"
)

// Simulate replays a recorded trace through the graph in virtual time,
// fully deterministically — the regression-test twin of the live
// Runner, the way record.ReplaySim twins record.ReplayRPC. Each trace
// event is one arrival injected at every root at its recorded
// timestamp; a node burns its per-request cost on one of Workers
// virtual workers (FIFO by arrival, least-loaded worker first), then
// its children's calls arrive concurrently; a call completes when its
// local work and every child's call have completed. Per-node and
// end-to-end latency distributions come out as exact order statistics
// over the sampled latencies, so golden aggregates are byte-identical
// across runs.

// SimConfig shapes a virtual-time topology replay.
type SimConfig struct {
	// Workers bounds each node's concurrent local executions
	// (default 2); queueing beyond it is what amplifies the tail.
	Workers int
	// UnitNanos converts one spin unit to virtual nanoseconds
	// (default 1000).
	UnitNanos float64
	// Accel, when non-nil, accelerates every node exactly as
	// RunnerConfig.Accel does.
	Accel *AccelConfig
	// EmitSpans additionally reconstructs every simulated request as a
	// trace tree in virtual time: a topo.request root per arrival
	// (process "client"), a server span per node call, and queue-wait /
	// topo.work children splitting each call into the time it sat
	// waiting for a worker and the time it burned. Trace and span IDs
	// are assigned in deterministic event order, so the spans — and any
	// tail-tax attribution over them — are byte-identical across runs
	// and safe to pin in goldens.
	EmitSpans bool
}

func (c *SimConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if !(c.UnitNanos > 0) {
		c.UnitNanos = 1000
	}
}

// NodeAggregate is one node's simulated latency distribution (exact
// nearest-rank order statistics, in virtual nanoseconds).
type NodeAggregate struct {
	Node      string  `json:"node"`
	Depth     int     `json:"depth"`
	Requests  int     `json:"requests"`
	MeanNanos float64 `json:"mean_nanos"`
	P50Nanos  float64 `json:"p50_nanos"`
	P99Nanos  float64 `json:"p99_nanos"`
	MaxNanos  float64 `json:"max_nanos"`
}

// SimResult is a full virtual-time replay: per-node aggregates in graph
// declaration order plus the end-to-end distribution over arrivals.
type SimResult struct {
	PerNode []NodeAggregate `json:"per_node"`
	E2E     NodeAggregate   `json:"e2e"`
	// Spans holds the reconstructed virtual-time trace trees when
	// SimConfig.EmitSpans is set; excluded from JSON so existing golden
	// aggregates stay byte-stable.
	Spans []telemetry.SpanData `json:"-"`
}

// simCall is one in-flight call at a node (or the virtual source
// spanning all roots when node is nil).
type simCall struct {
	node        *simNode
	arrival     float64
	start       float64 // worker pickup; queue wait is start-arrival
	localFinish float64
	pending     int // outstanding child calls
	childMax    float64
	parent      *simCall

	// Span identity when SimConfig.EmitSpans is set.
	traceID uint64
	spanID  uint64
}

// simNode is a node's virtual execution state.
type simNode struct {
	node     *Node
	children []*simNode
	workers  []float64 // each worker's busy-until time
	units    float64   // local cost per request, in spin units
	samples  []float64
}

// simEvent is a scheduled call arrival.
type simEvent struct {
	at   float64
	seq  int64
	call *simCall
}

type simHeap []simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].at != h[j].at { //modelcheck:ignore floatcmp — heap tie-break needs exact equality, seq breaks ties
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *simHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulate replays the trace through the graph. The trace is purely an
// arrival source: each event injects one request at every root at its
// recorded arrival time (services and payloads are ignored — the graph
// defines the work).
func Simulate(g *Graph, t *record.Trace, cfg SimConfig) (*SimResult, error) {
	if g == nil || len(g.Nodes) == 0 {
		return nil, fmt.Errorf("topology: simulate: empty graph")
	}
	if t == nil || len(t.Events) == 0 {
		return nil, fmt.Errorf("topology: simulate: empty trace")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Accel != nil {
		if err := cfg.Accel.validate(); err != nil {
			return nil, err
		}
	}
	cfg.setDefaults()

	byName := make(map[string]*simNode, len(g.Nodes))
	var order []*simNode
	for _, n := range g.Nodes {
		units := n.TotalUnits()
		if cfg.Accel != nil {
			units = cfg.Accel.AcceleratedUnits(n)
		}
		sn := &simNode{node: n, workers: make([]float64, cfg.Workers), units: units}
		byName[n.Name] = sn
		order = append(order, sn)
	}
	for _, sn := range order {
		for _, c := range sn.node.Children {
			sn.children = append(sn.children, byName[c])
		}
	}
	var roots []*simNode
	for _, name := range g.Roots() {
		roots = append(roots, byName[name])
	}

	var events simHeap
	var seq int64
	push := func(at float64, c *simCall) {
		heap.Push(&events, simEvent{at: at, seq: seq, call: c})
		seq++
	}

	var spanSeq uint64
	nextSpanID := func() uint64 {
		spanSeq++
		return spanSeq
	}
	var spans []telemetry.SpanData
	// emitSpans reconstructs c as virtual-time SpanData at completion:
	// the virtual source becomes the topo.request root, a node call
	// becomes a server span whose queue-wait/topo.work children
	// partition its pre-fan-out window — the same shapes the live traced
	// Runner records, so tailtrace analyzes both identically.
	emitSpans := func(c *simCall, at float64) {
		vt := func(nanos float64) time.Time { return time.Unix(0, int64(nanos)) }
		if c.node == nil {
			spans = append(spans, telemetry.SpanData{
				TraceID: c.traceID, SpanID: c.spanID,
				Name: "topo.request", Process: "client",
				Start: vt(c.arrival), Duration: time.Duration(at - c.arrival),
			})
			return
		}
		parentID := uint64(0)
		if c.parent != nil {
			parentID = c.parent.spanID
		}
		spans = append(spans, telemetry.SpanData{
			TraceID: c.traceID, SpanID: c.spanID, ParentID: parentID,
			Name: "sim.node/" + c.node.node.Name, Process: c.node.node.Name,
			Category: telemetry.CatRPC,
			Start:    vt(c.arrival), Duration: time.Duration(at - c.arrival),
		})
		if c.start > c.arrival {
			spans = append(spans, telemetry.SpanData{
				TraceID: c.traceID, SpanID: nextSpanID(), ParentID: c.spanID,
				Name: "queue-wait", Process: c.node.node.Name,
				Category: telemetry.CatQueue,
				Start:    vt(c.arrival), Duration: time.Duration(c.start - c.arrival),
			})
		}
		if c.localFinish > c.start {
			spans = append(spans, telemetry.SpanData{
				TraceID: c.traceID, SpanID: nextSpanID(), ParentID: c.spanID,
				Name: "topo.work", Process: c.node.node.Name,
				Category: telemetry.CatWork,
				Start:    vt(c.start), Duration: time.Duration(c.localFinish - c.start),
			})
		}
	}

	e2e := make([]float64, 0, len(t.Events))
	var finish func(c *simCall, at float64)
	finish = func(c *simCall, at float64) {
		if c.node != nil {
			c.node.samples = append(c.node.samples, at-c.arrival)
		} else {
			e2e = append(e2e, at-c.arrival)
		}
		if cfg.EmitSpans {
			emitSpans(c, at)
		}
		if p := c.parent; p != nil {
			if at > p.childMax {
				p.childMax = at
			}
			p.pending--
			if p.pending == 0 {
				done := p.localFinish
				if p.childMax > done {
					done = p.childMax
				}
				finish(p, done)
			}
		}
	}

	// The virtual source fans each arrival out to every root with zero
	// local cost, so the end-to-end latency is the slowest root subtree
	// — exactly Runner.Call's semantics.
	for i, e := range t.Events {
		at := float64(e.ArrivalNanos)
		src := &simCall{arrival: at, localFinish: at, pending: len(roots)}
		if cfg.EmitSpans {
			src.traceID = uint64(i) + 1
			src.spanID = nextSpanID()
		}
		for _, root := range roots {
			rc := &simCall{node: root, arrival: at, parent: src}
			if cfg.EmitSpans {
				rc.traceID = src.traceID
				rc.spanID = nextSpanID()
			}
			push(at, rc)
		}
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(simEvent)
		c := ev.call
		sn := c.node
		// Least-loaded worker, lowest index on ties: FIFO by arrival
		// because the heap pops arrivals in order per node.
		w := 0
		for i := 1; i < len(sn.workers); i++ {
			if sn.workers[i] < sn.workers[w] {
				w = i
			}
		}
		start := c.arrival
		if sn.workers[w] > start {
			start = sn.workers[w]
		}
		c.start = start
		c.localFinish = start + sn.units*cfg.UnitNanos
		sn.workers[w] = c.localFinish
		if len(sn.children) == 0 {
			finish(c, c.localFinish)
			continue
		}
		c.pending = len(sn.children)
		for _, child := range sn.children {
			cc := &simCall{node: child, arrival: c.localFinish, parent: c}
			if cfg.EmitSpans {
				cc.traceID = c.traceID
				cc.spanID = nextSpanID()
			}
			push(c.localFinish, cc)
		}
	}

	res := &SimResult{Spans: spans}
	for _, sn := range order {
		res.PerNode = append(res.PerNode, aggregate(sn.node.Name, g.Depth(sn.node.Name), sn.samples))
	}
	res.E2E = aggregate("e2e", 0, e2e)
	return res, nil
}

// aggregate computes exact nearest-rank order statistics over samples.
func aggregate(name string, depth int, samples []float64) NodeAggregate {
	a := NodeAggregate{Node: name, Depth: depth, Requests: len(samples)}
	if len(samples) == 0 {
		return a
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, s := range sorted {
		sum += s
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	a.MeanNanos = sum / float64(len(sorted))
	a.P50Nanos = rank(0.5)
	a.P99Nanos = rank(0.99)
	a.MaxNanos = sorted[len(sorted)-1]
	return a
}
