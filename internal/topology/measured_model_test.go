package topology

import (
	"context"
	"math"
	"path/filepath"
	"testing"
)

// The multi-tier twin of the repository's root measured-vs-model test:
// drive the checked-in three-tier ads-chain topology open-loop over the
// real RPC stack, "accelerate" every node by replacing its kernel spin
// units with the modeled offload cost, and check the measured
// end-to-end p99 shift against the composed per-tier Accelerometer
// model (Predict). Three arms, mirroring the single-service test:
//
//	null  — the same graph shape at ~zero spin cost, measuring the pure
//	        RPC hop overhead, subtracted from both other arms
//	base  — every node burns work+kernel units
//	accel — every node burns work + o0 + L + kernel/A units
//
// The tolerance is 40% on p99 (stated gate; the single-service test
// uses 35% on p50 — the tail adds scheduler noise on top).
//
// The chain-shaped example is the one measured because the composed
// model assumes fan-out children execute concurrently, which needs at
// least as many cores as the widest fan-out; on a chain the critical
// path equals the total work, so the prediction holds on any core
// count (including single-core CI boxes). The QPS is far below the
// chain's single-core capacity so queueing does not distort the tail.

const (
	modelTolerance = 0.40
	modelRequests  = 120
	modelQPS       = 40 // 25ms spacing ≫ the ~5ms request: unloaded
	modelWarmup    = 5
)

// measureE2E runs one arm and returns the warmup-excluded end-to-end
// p50/p99 in nanoseconds.
func measureE2E(t *testing.T, g *Graph, cfg RunnerConfig) (p50, p99 float64) {
	t.Helper()
	r, err := NewRunner(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < modelWarmup; i++ {
		if _, err := r.Call(context.Background(), []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}
	before := r.E2ESnapshot()
	stats, err := r.RunOpenLoop(context.Background(), LoadConfig{QPS: modelQPS, Requests: modelRequests})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Fatalf("run had %d errors", stats.Errors)
	}
	if err := r.ServeErr(); err != nil {
		t.Fatal(err)
	}
	window := r.E2ESnapshot().Delta(before)
	if window.Count != modelRequests {
		t.Fatalf("windowed count = %d, want %d", window.Count, modelRequests)
	}
	return window.Quantile(0.5), window.Quantile(0.99)
}

func TestMeasuredTopologyE2EMatchesComposedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement")
	}
	g, err := ParseSpecFile(filepath.Join(specDir, "ads-chain.topo"))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(g, testAccel)
	if err != nil {
		t.Fatal(err)
	}

	nullCfg := RunnerConfig{UnitIters: 1}
	baseCfg := RunnerConfig{}
	accelCfg := RunnerConfig{Accel: &testAccel}

	_, p99Null := measureE2E(t, g, nullCfg)
	p50Base, p99Base := measureE2E(t, g, baseCfg)
	p50Accel, p99Accel := measureE2E(t, g, accelCfg)

	if p99Base <= 2*p99Null || p99Accel <= p99Null {
		t.Fatalf("handler work does not dominate RPC fan-out overhead: null=%.3gms base=%.3gms accel=%.3gms",
			p99Null/1e6, p99Base/1e6, p99Accel/1e6)
	}
	measured := (p99Base - p99Null) / (p99Accel - p99Null)
	relErr := math.Abs(measured-pred.E2EReduction) / pred.E2EReduction
	t.Logf("e2e p99 null=%.3gms base=%.3gms accel=%.3gms (p50 base=%.3gms accel=%.3gms)",
		p99Null/1e6, p99Base/1e6, p99Accel/1e6, p50Base/1e6, p50Accel/1e6)
	t.Logf("measured e2e p99 reduction %.3fx; composed model predicts %.3fx over critical path %v (rel err %.1f%%)",
		measured, pred.E2EReduction, pred.CriticalPath, relErr*100)
	if relErr > modelTolerance {
		t.Errorf("measured e2e p99 reduction %.3fx disagrees with the composed model's %.3fx (rel err %.1f%% > %.0f%%)",
			measured, pred.E2EReduction, relErr*100, modelTolerance*100)
	}
}
