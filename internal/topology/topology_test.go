package topology

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleetdata"
	"repro/internal/services"
)

// specDir points at the checked-in example graphs.
var specDir = filepath.Join("..", "..", "testdata", "topologies")

const webSpec = `
# three tiers
topology web-feed-cache
node Web    work=40 kernel=60  -> Feed1 Feed2
node Feed1  work=30 kernel=120 -> Cache1
node Feed2  work=30 kernel=120 -> Cache2
node Cache1 work=20 kernel=180
node Cache2 work=20 kernel=180
`

func TestParseSpec(t *testing.T) {
	g, err := ParseSpec(webSpec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "web-feed-cache" {
		t.Fatalf("name = %q", g.Name)
	}
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(g.Nodes))
	}
	if got := g.Roots(); !reflect.DeepEqual(got, []string{"Web"}) {
		t.Fatalf("roots = %v", got)
	}
	web := g.Node("Web")
	if web == nil || web.Work != 40 || web.Kernel != 60 {
		t.Fatalf("Web = %+v", web)
	}
	if !reflect.DeepEqual(web.Children, []string{"Feed1", "Feed2"}) {
		t.Fatalf("Web children = %v", web.Children)
	}
	if d := g.Depth("Cache2"); d != 2 {
		t.Fatalf("Depth(Cache2) = %d, want 2", d)
	}
	if d := g.MaxDepth(); d != 2 {
		t.Fatalf("MaxDepth = %d, want 2", d)
	}
	wantTiers := [][]string{{"Web"}, {"Feed1", "Feed2"}, {"Cache1", "Cache2"}}
	if got := g.Tiers(); !reflect.DeepEqual(got, wantTiers) {
		t.Fatalf("tiers = %v, want %v", got, wantTiers)
	}
	if a := g.Node("Cache1").Alpha(); a != 0.9 {
		t.Fatalf("Cache1 alpha = %v, want 0.9", a)
	}
}

// TestParseSpecCharacterizedDefaults pins the fleetdata-derived split: a
// node named after a characterized service with no attributes gets
// DefaultNodeUnits split by its measured offloadable share.
func TestParseSpecCharacterizedDefaults(t *testing.T) {
	g, err := ParseSpec("topology t\nnode Ads1 -> Cache9\nnode Cache9 work=70 kernel=30\n")
	if err != nil {
		t.Fatal(err)
	}
	share, err := services.OffloadableShare(fleetdata.Ads1)
	if err != nil {
		t.Fatal(err)
	}
	ads := g.Node("Ads1")
	if ads.TotalUnits() != DefaultNodeUnits {
		t.Fatalf("Ads1 total = %v, want %v", ads.TotalUnits(), float64(DefaultNodeUnits))
	}
	// Fig 9 shares are integer percentages, so the derived kernel units
	// are exact.
	if want := share * DefaultNodeUnits; ads.Kernel != want { //modelcheck:ignore floatcmp — the parser computes this exact product
		t.Fatalf("Ads1 kernel = %v, want %v", ads.Kernel, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no topology line", "node A work=1\n", "no topology line"},
		{"no nodes", "topology t\n", "has no nodes"},
		{"dup topology", "topology a\ntopology b\nnode A work=1\n", "duplicate topology"},
		{"dup node", "topology t\nnode A work=1\nnode A work=1\n", "duplicate node"},
		{"bad directive", "topology t\nedge A B\n", "unknown directive"},
		{"bad attr", "topology t\nnode A cost=3\n", "unknown attribute"},
		{"bad number", "topology t\nnode A work=banana\n", "must be a number"},
		{"zero cost", "topology t\nnode A work=0 kernel=0\n", "must be positive"},
		{"uncharacterized default", "topology t\nnode Mystery\n", "not a characterized service"},
		{"undeclared child", "topology t\nnode A work=1 -> B\n", "undeclared node"},
		{"self call", "topology t\nnode A work=1 -> A\n", "calls itself"},
		{"dup child", "topology t\nnode A work=1 -> B B\nnode B work=1\n", "twice"},
		{"empty children", "topology t\nnode A work=1 ->\n", "no children"},
		{"cycle", "topology t\nnode A work=1 -> B\nnode B work=1 -> C\nnode C work=1 -> A\n", "no root"},
		{"cyclic island", "topology t\nnode A work=1\nnode B work=1 -> C\nnode C work=1 -> B\n", "cyclic island"},
		{"bad name", "topology t\nnode A/B work=1\n", "invalid node name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil {
				t.Fatalf("ParseSpec accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseSpecFiles parses every checked-in example graph and pins
// their key shapes.
func TestParseSpecFiles(t *testing.T) {
	g, err := ParseSpecFile(filepath.Join(specDir, "web-feed-cache.topo"))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDepth() != 2 || len(g.Nodes) != 5 {
		t.Fatalf("web-feed-cache: depth %d nodes %d, want 2/5", g.MaxDepth(), len(g.Nodes))
	}
	g, err = ParseSpecFile(filepath.Join(specDir, "ads-chain.topo"))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDepth() != 2 || len(g.Roots()) != 1 || g.Roots()[0] != "Ads1" {
		t.Fatalf("ads-chain: depth %d roots %v", g.MaxDepth(), g.Roots())
	}
	g, err = ParseSpecFile(filepath.Join(specDir, "two-tier.topo"))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDepth() != 1 || len(g.Nodes) != 3 {
		t.Fatalf("two-tier: depth %d nodes %d, want 1/3", g.MaxDepth(), len(g.Nodes))
	}
	if _, err := ParseSpecFile(filepath.Join(specDir, "nope.topo")); err == nil {
		t.Fatal("ParseSpecFile accepted a missing file")
	}
}

// TestDiamondDepth pins longest-path depth on a diamond: the join node
// sits below the deepest parent.
func TestDiamondDepth(t *testing.T) {
	g, err := ParseSpec(`topology d
node A work=1 -> B C
node B work=1 -> D
node C work=1 -> E
node E work=1 -> D
node D work=1
`)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Depth("D"); d != 3 {
		t.Fatalf("Depth(D) = %d, want 3 (longest path A->C->E->D)", d)
	}
}
