package topology

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/record"
)

// LoadConfig shapes an open-loop arrival stream injected at the graph's
// roots. Arrivals come from one of two sources:
//
//   - QPS + Requests: a synthetic schedule at the given rate — uniform
//     spacing by default, seeded-Poisson inter-arrivals with Poisson.
//   - Trace: a recorded request stream (internal/record); each event's
//     dilated arrival offset and payload size drive one injection, so a
//     production recording exercises the whole topology.
type LoadConfig struct {
	// QPS is the offered arrival rate (synthetic mode).
	QPS float64
	// Requests is how many arrivals to inject (synthetic mode).
	Requests int
	// Poisson draws exponential inter-arrival gaps (seeded) instead of
	// uniform spacing.
	Poisson bool
	// Seed feeds the Poisson draw (default 1).
	Seed uint64
	// Trace, when non-nil, replaces the synthetic schedule with the
	// recorded one (QPS/Requests/Poisson are then ignored).
	Trace *record.Trace
	// Dilate stretches (>1) or compresses (<1) the trace's recorded
	// gaps; 0 means 1.
	Dilate float64
	// MaxInFlight bounds concurrent injections (default 256). At the
	// bound the generator blocks — arrivals fall behind schedule rather
	// than piling up unbounded goroutines; MaxLagNanos reports it.
	MaxInFlight int
	// PayloadBytes sizes synthetic request payloads (default 256).
	PayloadBytes int
	// Recorder, when non-nil, captures the injected stream (one event
	// per root per arrival, with the request's outcome) so a live run
	// can be re-driven later through Trace.
	Recorder *record.Recorder
}

// LoadStats summarizes one open-loop run.
type LoadStats struct {
	Issued   int
	Errors   int
	Duration time.Duration
	// MaxLagNanos is the worst observed scheduling lag — how far behind
	// the schedule an arrival was actually injected. Large lag means
	// the generator (or MaxInFlight), not the offered process, shaped
	// the arrivals.
	MaxLagNanos int64
}

// schedule computes the arrival offsets and per-arrival payload sizes.
func (cfg *LoadConfig) schedule() ([]time.Duration, []uint64, error) {
	if cfg.Trace != nil {
		if err := cfg.Trace.Validate(); err != nil {
			return nil, nil, err
		}
		if len(cfg.Trace.Events) == 0 {
			return nil, nil, fmt.Errorf("topology: trace has no events")
		}
		if cfg.Dilate < 0 {
			return nil, nil, fmt.Errorf("topology: negative time dilation %v", cfg.Dilate)
		}
		due := cfg.Trace.DueTimes(cfg.Dilate)
		sizes := make([]uint64, len(cfg.Trace.Events))
		for i := range cfg.Trace.Events {
			sizes[i] = cfg.Trace.Events[i].PayloadBytes
		}
		return due, sizes, nil
	}
	if !(cfg.QPS > 0) {
		return nil, nil, fmt.Errorf("topology: QPS must be positive, got %v", cfg.QPS)
	}
	if cfg.Requests <= 0 {
		return nil, nil, fmt.Errorf("topology: Requests must be positive, got %d", cfg.Requests)
	}
	payload := uint64(256)
	if cfg.PayloadBytes > 0 {
		payload = uint64(cfg.PayloadBytes)
	}
	gap := float64(time.Second) / cfg.QPS
	due := make([]time.Duration, cfg.Requests)
	sizes := make([]uint64, cfg.Requests)
	if cfg.Poisson {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		rng := dist.NewRand(seed)
		at := 0.0
		for i := range due {
			at += rng.ExpFloat64() * gap
			due[i] = time.Duration(at)
			sizes[i] = payload
		}
	} else {
		for i := range due {
			due[i] = time.Duration(float64(i) * gap)
			sizes[i] = payload
		}
	}
	return due, sizes, nil
}

// RunOpenLoop injects the configured arrival stream at the topology's
// roots: each arrival is one Runner.Call issued at its scheduled offset,
// open-loop — a slow request delays nothing behind it, up to
// MaxInFlight. Latency lands in the runner's e2e and per-node
// histograms. Cancelling ctx stops the injection between arrivals and
// waits for in-flight requests.
func (r *Runner) RunOpenLoop(ctx context.Context, cfg LoadConfig) (LoadStats, error) {
	var stats LoadStats
	due, sizes, err := cfg.schedule()
	if err != nil {
		return stats, err
	}
	if len(r.roots) == 0 {
		return stats, fmt.Errorf("topology: runner not started")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 256
	}

	// One zero-filled backing array serves every payload size.
	const payloadCap = 1 << 20
	var maxPayload uint64
	for _, s := range sizes {
		if s > maxPayload {
			maxPayload = s
		}
	}
	if maxPayload > payloadCap {
		maxPayload = payloadCap
	}
	backing := make([]byte, maxPayload)

	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0

	start := time.Now()
	for i := range due {
		if lag := time.Since(start) - due[i]; lag > 0 && int64(lag) > stats.MaxLagNanos {
			stats.MaxLagNanos = int64(lag)
		} else if lag < 0 {
			timer := time.NewTimer(-lag)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				wg.Wait()
				stats.Errors = errs
				stats.Duration = time.Since(start)
				return stats, ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			stats.Errors = errs
			stats.Duration = time.Since(start)
			return stats, ctx.Err()
		}
		size := sizes[i]
		if size > maxPayload {
			size = maxPayload
		}
		arrival := int64(due[i])
		stats.Issued++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			_, err := r.Call(ctx, backing[:size])
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
			}
			if cfg.Recorder != nil {
				outcome := record.OutcomeOK
				if err != nil {
					outcome = record.OutcomeError
				}
				for _, root := range r.graph.Roots() {
					cfg.Recorder.RecordAt(arrival, root, size, size, outcome)
				}
			}
		}()
	}
	wg.Wait()
	stats.Errors = errs
	stats.Duration = time.Since(start)
	return stats, nil
}
