package topology

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/record"
	"repro/internal/telemetry"
)

// fastConfig keeps live tests quick: tiny spin units, small pools.
func fastConfig(reg *telemetry.Registry) RunnerConfig {
	return RunnerConfig{UnitIters: 20, PoolSize: 2, Registry: reg, CallTimeout: 5 * time.Second}
}

func startRunner(t *testing.T, spec string, cfg RunnerConfig) *Runner {
	t.Helper()
	g, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestRunnerEndToEnd drives the three-tier graph open-loop over real
// TCP loopback servers and checks every tier saw every request.
func TestRunnerEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := startRunner(t, webSpec, fastConfig(reg))

	stats, err := r.RunOpenLoop(context.Background(), LoadConfig{QPS: 500, Requests: 40})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != 40 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := r.ServeErr(); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.Name != "web-feed-cache" || len(rep.Tiers) != 5 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.E2ERequests != 40 {
		t.Fatalf("e2e requests = %d, want 40", rep.E2ERequests)
	}
	for _, ts := range rep.Tiers {
		if ts.Requests != 40 || ts.Errors != 0 {
			t.Fatalf("tier %s: %+v, want 40 requests", ts.Node, ts)
		}
		if ts.P99Nanos <= 0 || ts.P50Nanos <= 0 {
			t.Fatalf("tier %s: empty latency distribution: %+v", ts.Node, ts)
		}
		// A parent's latency includes its slowest child's, so the tail
		// can only amplify across a hop (within histogram resolution).
		if ts.Amplification < 0.95 {
			t.Fatalf("tier %s: amplification %v < 1", ts.Node, ts.Amplification)
		}
	}
	// Tiers are sorted by depth: the root first, leaves last.
	if rep.Tiers[0].Node != "Web" || rep.Tiers[0].Depth != 0 {
		t.Fatalf("first tier = %+v, want Web at depth 0", rep.Tiers[0])
	}
	// Per-tier histograms export through the registry.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"topo_web_latency_nanos", "topo_cache1_latency_nanos", "topo_e2e_latency_nanos"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("exposition lacks %s:\n%s", name, b.String())
		}
	}
}

// TestRunnerTraceArrivals replays a recorded trace as the arrival
// source and re-records the injected stream at the root.
func TestRunnerTraceArrivals(t *testing.T) {
	tr, err := record.Synthesize("steady", 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := record.NewRecorder(1 << 10)
	r := startRunner(t, "topology one\nnode Solo work=2 kernel=2\n", fastConfig(nil))
	stats, err := r.RunOpenLoop(context.Background(), LoadConfig{
		Trace:    tr,
		Dilate:   0.01, // compress the recorded gaps hard: keep the test fast
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != len(tr.Events) || stats.Errors != 0 {
		t.Fatalf("stats = %+v, want %d issued", stats, len(tr.Events))
	}
	captured := rec.Snapshot()
	if len(captured.Events) != len(tr.Events) {
		t.Fatalf("recorder captured %d events, want %d", len(captured.Events), len(tr.Events))
	}
	if len(captured.Services) != 1 || captured.Services[0] != "Solo" {
		t.Fatalf("recorded services = %v, want [Solo]", captured.Services)
	}
	for _, e := range captured.Events {
		if e.Outcome != record.OutcomeOK {
			t.Fatalf("captured outcome = %v", e.Outcome)
		}
	}
}

// TestRunnerBatcherEdges swaps every edge's client pool for a Batcher.
func TestRunnerBatcherEdges(t *testing.T) {
	cfg := fastConfig(nil)
	cfg.UseBatcher = true
	r := startRunner(t, "topology b\nnode Front work=2 kernel=2 -> Leaf\nnode Leaf work=2 kernel=2\n", cfg)
	stats, err := r.RunOpenLoop(context.Background(), LoadConfig{QPS: 1000, Requests: 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != 32 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if rep := r.Report(); rep.Tiers[1].Requests != 32 {
		t.Fatalf("leaf saw %d requests, want 32", rep.Tiers[1].Requests)
	}
}

// TestRunnerAccelArm: the accelerated runner reports faster tiers than
// baseline for the same offered load (coarse sanity, exact comparison
// lives in the non-short measured-vs-model test).
func TestRunnerAccelArm(t *testing.T) {
	cfg := fastConfig(nil)
	cfg.Accel = &testAccel
	r := startRunner(t, webSpec, cfg)
	stats, err := r.RunOpenLoop(context.Background(), LoadConfig{QPS: 500, Requests: 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if rep := r.Report(); rep.E2EP50Nanos <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunnerLifecycleErrors(t *testing.T) {
	g, err := ParseSpec("topology one\nnode Solo work=1 kernel=1\n")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(g, fastConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Calls and load before Start fail cleanly.
	if _, err := r.Call(context.Background(), nil); err == nil {
		t.Fatal("Call succeeded before Start")
	}
	if _, err := r.RunOpenLoop(context.Background(), LoadConfig{QPS: 1, Requests: 1}); err == nil {
		t.Fatal("RunOpenLoop succeeded before Start")
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err == nil {
		t.Fatal("second Start succeeded")
	}
	if _, err := r.Call(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and calls after Close fail.
	if err := r.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := r.Call(context.Background(), nil); err == nil {
		t.Fatal("Call succeeded after Close")
	}
}

func TestLoadConfigRejects(t *testing.T) {
	r := startRunner(t, "topology one\nnode Solo work=1 kernel=1\n", fastConfig(nil))
	for name, cfg := range map[string]LoadConfig{
		"no qps":          {Requests: 4},
		"no requests":     {QPS: 100},
		"negative dilate": {Trace: &record.Trace{Services: []string{"s"}, Events: []record.Event{{}}}, Dilate: -1},
		"empty trace":     {Trace: &record.Trace{Services: []string{"s"}}},
	} {
		if _, err := r.RunOpenLoop(context.Background(), cfg); err == nil {
			t.Fatalf("%s: accepted %+v", name, cfg)
		}
	}
}

// TestPoissonSchedule pins the seeded draw: same seed, same schedule;
// different seed, different schedule.
func TestPoissonSchedule(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		cfg := LoadConfig{QPS: 1000, Requests: 16, Poisson: true, Seed: seed}
		due, sizes, err := cfg.schedule()
		if err != nil {
			t.Fatal(err)
		}
		if len(due) != 16 || len(sizes) != 16 {
			t.Fatalf("schedule lengths %d/%d", len(due), len(sizes))
		}
		return due
	}
	a, b, c := mk(1), mk(1), mk(2)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("schedule not strictly increasing at %d: %v", i, a)
		}
	}
	if !same || !diff {
		t.Fatalf("seeding broken: same=%v diff=%v", same, diff)
	}
}

// TestRunnerAsyncArm drives the topology with every node serving through
// a completion-queue engine: requests park on per-node simulated
// accelerators, continuations fan out, and the report matches the sync
// arm's shape (every tier sees every request).
func TestRunnerAsyncArm(t *testing.T) {
	cfg := fastConfig(telemetry.NewRegistry())
	cfg.Accel = &testAccel
	cfg.Async = true
	cfg.AsyncWorkers = 2
	r := startRunner(t, webSpec, cfg)
	stats, err := r.RunOpenLoop(context.Background(), LoadConfig{QPS: 500, Requests: 30})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != 30 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := r.ServeErr(); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if len(rep.Tiers) != 5 || rep.E2ERequests != 30 {
		t.Fatalf("report = %+v", rep)
	}
	for _, ts := range rep.Tiers {
		if ts.Requests != 30 || ts.Errors != 0 {
			t.Fatalf("tier %s: %+v, want 30 requests", ts.Node, ts)
		}
	}
	// Every request parked exactly once per node: 5 nodes x 30 requests.
	as := r.AsyncStats()
	if as.Served != 150 || as.Errors != 0 {
		t.Fatalf("async stats = %+v, want 150 served", as)
	}
	if as.Parked != 0 || as.InFlight != 0 {
		t.Fatalf("async stats = %+v, want drained", as)
	}
	if as.Workers != 5*2 {
		t.Fatalf("async stats workers = %d, want 10", as.Workers)
	}
}

// TestRunnerAsyncValidation covers the async-mode constructor errors.
func TestRunnerAsyncValidation(t *testing.T) {
	g, err := ParseSpec("topology one\nnode Solo work=1 kernel=1\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(nil)
	cfg.Async = true
	if _, err := NewRunner(g, cfg); err == nil {
		t.Fatal("Async without Accel succeeded")
	}
	cfg.Accel = &testAccel
	cfg.UseBatcher = true
	if _, err := NewRunner(g, cfg); err == nil {
		t.Fatal("Async with UseBatcher succeeded")
	}
}
