package topology

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/record"
)

// arrivalTrace builds a minimal trace whose events arrive at the given
// offsets (nanoseconds) — the sim uses traces purely as arrival sources.
func arrivalTrace(t *testing.T, arrivals ...int64) *record.Trace {
	t.Helper()
	tr := &record.Trace{Services: []string{"gen"}}
	for _, at := range arrivals {
		tr.Events = append(tr.Events, record.Event{ArrivalNanos: at, PayloadBytes: 64, Granularity: 64})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSimulateUnloadedChain pins exact virtual latencies: with one
// arrival and no queueing, every node's latency is its own units plus
// its subtree's, scaled by UnitNanos.
func TestSimulateUnloadedChain(t *testing.T) {
	g, err := ParseSpec("topology c\nnode A work=10 kernel=0 -> B\nnode B work=20 kernel=0 -> C\nnode C work=30 kernel=0\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(g, arrivalTrace(t, 0), SimConfig{UnitNanos: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"A": 6000, "B": 5000, "C": 3000} // subtree units × 100
	for _, na := range res.PerNode {
		if na.Requests != 1 || na.P50Nanos != want[na.Node] { //modelcheck:ignore floatcmp — virtual time is exact integer arithmetic
			t.Fatalf("%s: %+v, want latency %v", na.Node, na, want[na.Node])
		}
	}
	if res.E2E.P99Nanos != 6000 || res.E2E.Requests != 1 {
		t.Fatalf("e2e = %+v", res.E2E)
	}
}

// TestSimulateFanOutTakesMax pins concurrent fan-out: the parent waits
// for its slowest child, not the sum.
func TestSimulateFanOutTakesMax(t *testing.T) {
	g, err := ParseSpec("topology f\nnode P work=10 kernel=0 -> S F\nnode S work=5 kernel=0\nnode F work=50 kernel=0\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(g, arrivalTrace(t, 0), SimConfig{UnitNanos: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.E2E.MaxNanos != 60 { // 10 + max(5, 50)
		t.Fatalf("e2e = %+v, want 60", res.E2E)
	}
}

// TestSimulateQueueing pins worker contention: two simultaneous
// arrivals at a single-worker node serialize, so the second waits.
func TestSimulateQueueing(t *testing.T) {
	g, err := ParseSpec("topology q\nnode A work=10 kernel=0\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(g, arrivalTrace(t, 0, 0), SimConfig{Workers: 1, UnitNanos: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := res.PerNode[0]
	if a.Requests != 2 || a.P50Nanos != 10 || a.MaxNanos != 20 {
		t.Fatalf("A = %+v, want latencies 10 and 20", a)
	}
	// With two workers the same arrivals run in parallel.
	res, err = Simulate(g, arrivalTrace(t, 0, 0), SimConfig{Workers: 2, UnitNanos: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := res.PerNode[0]; a.MaxNanos != 10 {
		t.Fatalf("A = %+v, want both latencies 10", a)
	}
}

// TestSimulateAccelMatchesPrediction pins the sim against the composed
// model on an unloaded graph: the per-arrival latency ratio between a
// baseline and an accelerated replay is exactly the predicted
// end-to-end reduction (no queueing, so service times alone decide).
func TestSimulateAccelMatchesPrediction(t *testing.T) {
	g, err := ParseSpec(webSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals far apart: no queueing at 1µs/unit.
	tr := arrivalTrace(t, 0, 10_000_000, 20_000_000)
	base, err := Simulate(g, tr, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Simulate(g, tr, SimConfig{Accel: &testAccel})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Predict(g, testAccel)
	if err != nil {
		t.Fatal(err)
	}
	got := base.E2E.P50Nanos / accel.E2E.P50Nanos
	if !dist.WithinRel(got, p.E2EReduction, 1e-9) {
		t.Fatalf("sim reduction %v vs predicted %v", got, p.E2EReduction)
	}
}

// TestSimulateDeterministic: byte-identical aggregates across runs.
func TestSimulateDeterministic(t *testing.T) {
	g, err := ParseSpecFile(specDir + "/two-tier.topo")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := record.Synthesize("retry-storm", 99, 512)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(g, tr, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, tr, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two simulations of the same trace diverged")
	}
}

func TestSimulateRejects(t *testing.T) {
	g, err := ParseSpec("topology t\nnode A work=1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(nil, arrivalTrace(t, 0), SimConfig{}); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, err := Simulate(g, nil, SimConfig{}); err == nil {
		t.Fatal("accepted nil trace")
	}
	if _, err := Simulate(g, arrivalTrace(t, 0), SimConfig{Accel: &AccelConfig{A: 0.5}}); err == nil {
		t.Fatal("accepted invalid accel")
	}
}
