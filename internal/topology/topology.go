// Package topology turns the fleet's eight independent service loops
// into a composable serving system: a declarative service-dependency
// graph (in the spirit of the pces "computational pattern" DSL) drives
// real rpc.Servers on loopback, upstream handlers issue mid-request
// downstream calls per the graph's fan-out spec, and per-tier telemetry
// histograms capture how tail latency amplifies hop by hop.
//
// The same graph feeds three consumers:
//
//   - Runner (runner.go): every node is a live rpc.Server; an open-loop
//     generator (generator.go) injects arrivals at the roots.
//   - Simulate (sim.go): a deterministic virtual-time replay of a
//     recorded trace through the graph, for golden regression tests.
//   - Predict (model.go): the composed Accelerometer model — per-node
//     latency reduction from core.Model chained along the graph's
//     critical path — validated against the measured end-to-end p99.
//
// Work is counted in abstract spin units exactly like the repository's
// measured-vs-model test: a node's request costs Work non-kernel units
// plus Kernel offloadable units, so core.Params maps directly
// (C = Work+Kernel, α = Kernel/C).
package topology

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fleetdata"
	"repro/internal/services"
)

// DefaultNodeUnits is the total per-request work (in spin units) given
// to a node whose spec line omits work=/kernel= attributes. Such nodes
// must be named after a characterized service (fleetdata.Services); the
// kernel share is then the service's measured offloadable fraction
// (services.OffloadableShare), so example graphs can say just
// "node Feed1 -> Cache1" and inherit the paper's Table 3 split.
const DefaultNodeUnits = 100

// Node is one service instance in the dependency graph.
type Node struct {
	// Name identifies the node; downstream RPC methods are Name + ".req".
	Name string
	// Work is the per-request non-kernel cost in spin units.
	Work float64
	// Kernel is the per-request offloadable kernel cost in spin units.
	Kernel float64
	// Children are downstream nodes called mid-request, concurrently
	// (fan-out); the request completes when every child responds.
	Children []string
}

// TotalUnits is the node's unaccelerated per-request cost.
func (n *Node) TotalUnits() float64 { return n.Work + n.Kernel }

// Alpha is the node's offloadable fraction Kernel/(Work+Kernel).
func (n *Node) Alpha() float64 {
	t := n.TotalUnits()
	if t <= 0 {
		return 0
	}
	return n.Kernel / t
}

// Graph is a validated service-dependency DAG.
type Graph struct {
	// Name is the topology's declared name.
	Name string
	// Nodes in declaration order.
	Nodes []*Node

	byName map[string]*Node
	depth  map[string]int
	roots  []string
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.byName[name] }

// Roots returns the entry nodes (no parents), in declaration order.
// Arrivals are injected at every root.
func (g *Graph) Roots() []string { return g.roots }

// Depth returns the node's tier: 0 for roots, else 1 + the maximum
// parent depth (the longest call path from any root).
func (g *Graph) Depth(name string) int { return g.depth[name] }

// MaxDepth returns the deepest tier index.
func (g *Graph) MaxDepth() int {
	max := 0
	for _, d := range g.depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Tiers groups node names by Depth, each tier sorted by name — the
// shape reports and the debug panel render.
func (g *Graph) Tiers() [][]string {
	tiers := make([][]string, g.MaxDepth()+1)
	for _, n := range g.Nodes {
		d := g.depth[n.Name]
		tiers[d] = append(tiers[d], n.Name)
	}
	for _, t := range tiers {
		sort.Strings(t)
	}
	return tiers
}

// validNodeName matches spec node identifiers.
func validNodeName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// ParseSpec parses the declarative topology format:
//
//	# comment
//	topology web-feed-cache
//	node Web  work=40 kernel=60 -> Feed1 Feed2
//	node Feed1 -> Cache1
//	node Cache1 work=20 kernel=180
//
// One "topology <name>" line, then one "node" line per service. The
// optional work=/kernel= attributes give the per-request cost in spin
// units; a node that omits both must be named after a characterized
// service (case-insensitively) and inherits DefaultNodeUnits split by
// the service's measured offloadable share. "-> A B" lists downstream
// children. The graph must be a DAG with at least one root.
func ParseSpec(src string) (*Graph, error) {
	g := &Graph{byName: make(map[string]*Node)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topology":
			if g.Name != "" {
				return nil, specErr(lineNo, "duplicate topology line")
			}
			if len(fields) != 2 {
				return nil, specErr(lineNo, "want: topology <name>")
			}
			g.Name = fields[1]
		case "node":
			n, err := parseNodeLine(fields[1:])
			if err != nil {
				return nil, specErr(lineNo, "%v", err)
			}
			if _, dup := g.byName[n.Name]; dup {
				return nil, specErr(lineNo, "duplicate node %q", n.Name)
			}
			g.byName[n.Name] = n
			g.Nodes = append(g.Nodes, n)
		default:
			return nil, specErr(lineNo, "unknown directive %q", fields[0])
		}
	}
	if g.Name == "" {
		return nil, fmt.Errorf("topology: spec has no topology line")
	}
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("topology: spec %q has no nodes", g.Name)
	}
	if err := g.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseSpecFile reads and parses a .topo spec from disk.
func ParseSpecFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	g, err := ParseSpec(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

func specErr(lineNo int, format string, args ...any) error {
	return fmt.Errorf("topology: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
}

// parseNodeLine parses "Name [work=N] [kernel=N] [-> Child...]".
func parseNodeLine(fields []string) (*Node, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("want: node <name> [work=N] [kernel=N] [-> child...]")
	}
	n := &Node{Name: fields[0], Work: math.NaN(), Kernel: math.NaN()}
	if !validNodeName(n.Name) {
		return nil, fmt.Errorf("invalid node name %q", n.Name)
	}
	rest := fields[1:]
	for len(rest) > 0 && rest[0] != "->" {
		key, val, ok := strings.Cut(rest[0], "=")
		if !ok {
			return nil, fmt.Errorf("node %s: bad attribute %q", n.Name, rest[0])
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || !(v >= 0) || v > 1e9 {
			return nil, fmt.Errorf("node %s: %s must be a number in [0, 1e9], got %q", n.Name, key, val)
		}
		switch key {
		case "work":
			n.Work = v
		case "kernel":
			n.Kernel = v
		default:
			return nil, fmt.Errorf("node %s: unknown attribute %q", n.Name, key)
		}
		rest = rest[1:]
	}
	if len(rest) > 0 { // "-> child..."
		if len(rest) == 1 {
			return nil, fmt.Errorf("node %s: -> lists no children", n.Name)
		}
		for _, c := range rest[1:] {
			if !validNodeName(c) {
				return nil, fmt.Errorf("node %s: invalid child name %q", n.Name, c)
			}
			n.Children = append(n.Children, c)
		}
	}
	if math.IsNaN(n.Work) && math.IsNaN(n.Kernel) {
		share, err := characterizedShare(n.Name)
		if err != nil {
			return nil, fmt.Errorf("node %s: no work=/kernel= attributes and %v", n.Name, err)
		}
		n.Kernel = math.Round(DefaultNodeUnits * share)
		n.Work = DefaultNodeUnits - n.Kernel
	} else {
		if math.IsNaN(n.Work) {
			n.Work = 0
		}
		if math.IsNaN(n.Kernel) {
			n.Kernel = 0
		}
	}
	if n.TotalUnits() <= 0 {
		return nil, fmt.Errorf("node %s: work+kernel must be positive", n.Name)
	}
	return n, nil
}

// characterizedShare resolves a node name to a characterized service's
// offloadable cycle share, case-insensitively.
func characterizedShare(name string) (float64, error) {
	for _, svc := range fleetdata.Services {
		if strings.EqualFold(string(svc), name) {
			return services.OffloadableShare(svc)
		}
	}
	return 0, fmt.Errorf("%q is not a characterized service (give explicit work=/kernel=)", name)
}

// finish validates edges, rejects cycles, and computes roots and depths.
func (g *Graph) finish() error {
	hasParent := make(map[string]bool)
	for _, n := range g.Nodes {
		seen := make(map[string]bool)
		for _, c := range n.Children {
			if g.byName[c] == nil {
				return fmt.Errorf("topology %s: node %s calls undeclared node %q", g.Name, n.Name, c)
			}
			if c == n.Name {
				return fmt.Errorf("topology %s: node %s calls itself", g.Name, n.Name)
			}
			if seen[c] {
				return fmt.Errorf("topology %s: node %s lists child %s twice", g.Name, n.Name, c)
			}
			seen[c] = true
			hasParent[c] = true
		}
	}
	for _, n := range g.Nodes {
		if !hasParent[n.Name] {
			g.roots = append(g.roots, n.Name)
		}
	}
	if len(g.roots) == 0 {
		return fmt.Errorf("topology %s: no root (every node has a parent — the graph is cyclic)", g.Name)
	}
	// Longest-path depth from the roots; the DFS also proves acyclicity.
	g.depth = make(map[string]int, len(g.Nodes))
	state := make(map[string]int, len(g.Nodes)) // 0 unvisited, 1 on stack, 2 done
	var walk func(name string, d int) error
	walk = func(name string, d int) error {
		if state[name] == 1 {
			return fmt.Errorf("topology %s: cycle through node %s", g.Name, name)
		}
		if cur, ok := g.depth[name]; ok {
			if d <= cur && state[name] == 2 {
				return nil
			}
			if d > cur {
				g.depth[name] = d
			}
		} else {
			g.depth[name] = d
		}
		state[name] = 1
		for _, c := range g.byName[name].Children {
			if err := walk(c, d+1); err != nil {
				return err
			}
		}
		state[name] = 2
		return nil
	}
	for _, r := range g.roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	// A node reachable from no root can only sit on a cycle detached
	// from every root; the roots check above already rejected that, but
	// guard against disconnected cyclic islands explicitly.
	for _, n := range g.Nodes {
		if _, ok := g.depth[n.Name]; !ok && state[n.Name] == 0 {
			return fmt.Errorf("topology %s: node %s is unreachable from any root (cyclic island)", g.Name, n.Name)
		}
	}
	return nil
}
