package topology

import (
	"context"
	"net"
	"testing"

	"repro/internal/rpc"
)

// benchUnits is the spin cost per request in both benchmark arms — large
// enough that the work dominates and the comparison measures the
// topology driver's per-request overhead, small enough for a fast gate.
const benchUnits = 20

// benchPayload matches the generator's default synthetic payload size.
const benchPayload = 256

// BenchmarkFlatRPCCall is the flat-fleet baseline: the same spin work
// behind a single rpc.Server on loopback, called directly by one client
// with no topology driver in the path. scripts/bench_topology.sh gates
// BenchmarkTopologyCall's per-request overhead against this.
func BenchmarkFlatRPCCall(b *testing.B) {
	iters := int64(benchUnits * DefaultUnitIters)
	srv, err := rpc.NewServer(func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		spinIters(iters)
		return rpc.Message{Method: req.Method, Payload: []byte{1}}, nil
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx, lis)            //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	b.Cleanup(func() { srv.Close() }) // errors swallowed per the teardown rule
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	client, err := rpc.NewClient(conn, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() }) // errors swallowed per the teardown rule
	payload := make([]byte, benchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.CallContext(ctx, rpc.Message{Method: "flat.req", Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyCall drives the identical spin work through a
// single-node graph: same RPC stack and loopback hop as the flat arm,
// plus everything the topology driver adds per request — client-pool
// checkout, per-node and end-to-end histogram records, depth bookkeeping.
func BenchmarkTopologyCall(b *testing.B) {
	g, err := ParseSpec("topology bench\nnode Solo work=20\n")
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRunner(g, RunnerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := r.Start(ctx); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() }) // errors swallowed per the teardown rule
	payload := make([]byte, benchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Call(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyCallTraced is the tail-trace arm: the identical
// single-node graph with the always-on tracer enabled, so every request
// additionally records its span tree (topo.request envelope plus the RPC
// stack's stage spans) into the bounded ring.
// scripts/bench_tailtrace.sh gates its per-request overhead against
// BenchmarkTopologyCall — tracing must stay cheap enough to leave on
// while hunting a tail.
//
// The ring is bounded small and warmed before the timer so the loop
// measures steady state — full ring, in-place overwrites — which is what
// a long-running traced process pays per request, rather than the
// one-time append-growth of a cold ring filling toward its capacity.
func BenchmarkTopologyCallTraced(b *testing.B) {
	g, err := ParseSpec("topology bench\nnode Solo work=20\n")
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRunner(g, RunnerConfig{Trace: true, TraceCapacity: 1 << 10})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := r.Start(ctx); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() }) // errors swallowed per the teardown rule
	payload := make([]byte, benchPayload)
	for i := 0; i < 128; i++ { // ~20 spans per request: fills both rings
		if _, err := r.Call(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Call(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
}
