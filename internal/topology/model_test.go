package topology

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// testAccel is the acceleration every model/sim/runner test applies:
// the same A/o0/L shape as the repository's single-service
// measured-vs-model test.
var testAccel = AccelConfig{A: 8, O0: 10, L: 10}

func TestPredictWebFeedCache(t *testing.T) {
	g, err := ParseSpec(webSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Predict(g, testAccel)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline critical path: Web(100) + Feed(150) + Cache(200) = 450.
	if p.BaselineUnits != 450 {
		t.Fatalf("baseline units = %v, want 450", p.BaselineUnits)
	}
	// Accelerated: 40+10+10+60/8 + 30+10+10+120/8 + 20+10+10+180/8 = 195.
	if p.AccelUnits != 195 {
		t.Fatalf("accel units = %v, want 195", p.AccelUnits)
	}
	if want := 450.0 / 195.0; p.E2EReduction != want { //modelcheck:ignore floatcmp — exact ratio of exactly-summed unit counts
		t.Fatalf("e2e reduction = %v, want %v", p.E2EReduction, want)
	}
	if len(p.CriticalPath) != 3 || p.CriticalPath[0] != "Web" {
		t.Fatalf("critical path = %v", p.CriticalPath)
	}
	// Per-node reduction is TotalUnits/AcceleratedUnits — e.g. Cache1:
	// 200 / 62.5 = 3.2.
	for _, np := range p.PerNode {
		n := g.Node(np.Node)
		want := n.TotalUnits() / testAccel.AcceleratedUnits(n)
		if !dist.WithinRel(np.Reduction, want, 1e-12) {
			t.Fatalf("%s reduction = %v, want %v", np.Node, np.Reduction, want)
		}
	}
}

// TestComposedPathReductionMatchesRecursive pins the identity between
// the two composition routes: the recursive critical-path walk and
// core.ComposeLatencyReductions over the path weights must agree when
// uniform acceleration preserves the critical path.
func TestComposedPathReductionMatchesRecursive(t *testing.T) {
	for _, spec := range []string{
		webSpec,
		"topology chain\nnode A work=10 kernel=90 -> B\nnode B work=50 kernel=50 -> C\nnode C work=90 kernel=10\n",
	} {
		g, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Predict(g, testAccel)
		if err != nil {
			t.Fatal(err)
		}
		composed, err := p.ComposedPathReduction()
		if err != nil {
			t.Fatal(err)
		}
		if !dist.WithinRel(composed, p.E2EReduction, 1e-9) {
			t.Fatalf("%s: composed %v vs recursive %v", g.Name, composed, p.E2EReduction)
		}
		// Path weights are shares of the baseline critical path.
		sum := 0.0
		for _, w := range p.PathWeights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("%s: path weights sum to %v", g.Name, sum)
		}
	}
}

// TestPredictMultiRoot pins the max-over-roots rule: end-to-end latency
// follows the slowest root subtree.
func TestPredictMultiRoot(t *testing.T) {
	g, err := ParseSpec(`topology two
node A work=10 kernel=10
node B work=100 kernel=300 -> C
node C work=50 kernel=50
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Roots()) != 2 {
		t.Fatalf("roots = %v", g.Roots())
	}
	p, err := Predict(g, testAccel)
	if err != nil {
		t.Fatal(err)
	}
	if p.BaselineUnits != 500 {
		t.Fatalf("baseline = %v, want 500 (B+C)", p.BaselineUnits)
	}
	if p.CriticalPath[0] != "B" {
		t.Fatalf("critical path = %v, want to start at B", p.CriticalPath)
	}
}

func TestPredictRejects(t *testing.T) {
	g, err := ParseSpec(webSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Predict(nil, testAccel); err == nil {
		t.Fatal("Predict accepted a nil graph")
	}
	for _, bad := range []AccelConfig{
		{A: 1, O0: 10, L: 10},
		{A: 8, O0: -1, L: 10},
		{A: 8, O0: 10, L: math.NaN()},
	} {
		if _, err := Predict(g, bad); err == nil {
			t.Fatalf("Predict accepted %+v", bad)
		}
	}
}
