package topology

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// AccelConfig is the uniform acceleration applied to every node's kernel
// portion, in the same spin units the graph counts work in: the kernel
// runs A× faster on the accelerator at a per-invocation cost of O0
// (preparation) + L (interface) units on the host — the Sync/OffChip
// design from the paper, matching the repository's single-service
// measured-vs-model test.
type AccelConfig struct {
	A  float64 // accelerator speedup on the kernel units
	O0 float64 // offload preparation, in work units
	L  float64 // interface cost, in work units
}

func (a AccelConfig) validate() error {
	if math.IsNaN(a.A) || a.A <= 1 {
		return fmt.Errorf("topology: accelerator speedup A = %v, want > 1", a.A)
	}
	if math.IsNaN(a.O0) || a.O0 < 0 || math.IsNaN(a.L) || a.L < 0 {
		return fmt.Errorf("topology: offload costs O0 = %v, L = %v, want >= 0", a.O0, a.L)
	}
	return nil
}

// AcceleratedUnits is the node's per-request cost under a: the kernel
// portion shrinks A× and the request pays the offload overheads.
func (a AccelConfig) AcceleratedUnits(n *Node) float64 {
	return n.Work + a.O0 + a.L + n.Kernel/a.A
}

// NodePrediction is one node's single-service model evaluation.
type NodePrediction struct {
	Node  string
	Alpha float64
	// Reduction is the node's own latency reduction C/CL from
	// core.Model (Sync threading, off-chip strategy).
	Reduction float64
}

// Prediction is the composed Accelerometer model for a graph: per-node
// latency reductions chained along the critical call path.
type Prediction struct {
	PerNode []NodePrediction // graph declaration order

	// BaselineUnits and AccelUnits are the end-to-end critical-path
	// costs (a parent's cost plus the slowest child subtree, maximized
	// over roots) before and after acceleration.
	BaselineUnits float64
	AccelUnits    float64
	// CriticalPath is the baseline critical path, root first.
	CriticalPath []string
	// PathWeights are each critical-path node's share of BaselineUnits —
	// the weights core.ComposeLatencyReductions chains the per-node
	// reductions with.
	PathWeights []float64
	// E2EReduction = BaselineUnits / AccelUnits: the predicted
	// end-to-end latency reduction an unloaded open-loop run should
	// measure at every quantile (the whole latency distribution scales
	// when service times scale).
	E2EReduction float64
}

// Predict evaluates the composed model. Per node it builds core.Params
// (C = Work+Kernel, α = Kernel/C, n = 1) and takes the Sync/OffChip
// latency reduction; end to end it walks the graph's critical path —
// fan-out children run concurrently, so a parent's latency is its own
// cost plus the max over child subtrees — and composes the per-node
// reductions with core.ComposeLatencyReductions over the path weights.
func Predict(g *Graph, a AccelConfig) (*Prediction, error) {
	if g == nil || len(g.Nodes) == 0 {
		return nil, fmt.Errorf("topology: predict: empty graph")
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	p := &Prediction{}
	for _, n := range g.Nodes {
		m, err := core.New(core.Params{
			C:     n.TotalUnits(),
			Alpha: n.Alpha(),
			N:     1,
			O0:    a.O0,
			L:     a.L,
			A:     a.A,
		})
		if err != nil {
			return nil, fmt.Errorf("topology: node %s: %w", n.Name, err)
		}
		r, err := m.LatencyReduction(core.Sync, core.OffChip)
		if err != nil {
			return nil, fmt.Errorf("topology: node %s: %w", n.Name, err)
		}
		p.PerNode = append(p.PerNode, NodePrediction{Node: n.Name, Alpha: n.Alpha(), Reduction: r})
	}

	// Critical-path costs, maximized over roots (arrivals hit every
	// root concurrently, so end-to-end latency is the slowest root).
	var pathOf func(name string, cost func(*Node) float64) (float64, []string)
	pathOf = func(name string, cost func(*Node) float64) (float64, []string) {
		n := g.Node(name)
		best, bestPath := 0.0, []string(nil)
		for _, c := range n.Children {
			u, cp := pathOf(c, cost)
			if u > best {
				best, bestPath = u, cp
			}
		}
		return cost(n) + best, append([]string{name}, bestPath...)
	}
	baseCost := func(n *Node) float64 { return n.TotalUnits() }
	accelCost := a.AcceleratedUnits
	for _, r := range g.Roots() {
		if u, path := pathOf(r, baseCost); u > p.BaselineUnits {
			p.BaselineUnits, p.CriticalPath = u, path
		}
		if u, _ := pathOf(r, accelCost); u > p.AccelUnits {
			p.AccelUnits = u
		}
	}
	p.E2EReduction = p.BaselineUnits / p.AccelUnits
	for _, name := range p.CriticalPath {
		p.PathWeights = append(p.PathWeights, g.Node(name).TotalUnits()/p.BaselineUnits)
	}
	return p, nil
}

// ComposedPathReduction chains the per-node reductions along the
// baseline critical path with core.ComposeLatencyReductions. When the
// accelerated critical path follows the same nodes (uniform
// acceleration usually preserves it), this equals E2EReduction exactly —
// the model_test pins that identity; when acceleration shifts the
// critical path onto different nodes the serial composition is an upper
// bound and E2EReduction is the honest prediction.
func (p *Prediction) ComposedPathReduction() (float64, error) {
	byNode := make(map[string]float64, len(p.PerNode))
	for _, np := range p.PerNode {
		byNode[np.Node] = np.Reduction
	}
	reductions := make([]float64, len(p.CriticalPath))
	for i, name := range p.CriticalPath {
		reductions[i] = byNode[name]
	}
	return core.ComposeLatencyReductions(p.PathWeights, reductions)
}
