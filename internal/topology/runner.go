package topology

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// DefaultUnitIters is the xorshift iteration count per spin unit —
// identical to the single-service measured-vs-model test so unit counts
// mean the same thing in both.
const DefaultUnitIters = 5000

// RunnerConfig shapes a live topology run.
type RunnerConfig struct {
	// Accel, when non-nil, replaces every node's kernel cost with the
	// modeled offload cost (work + O0 + L + kernel/A spin units) — the
	// accelerated arm of an A/B against a baseline Runner.
	Accel *AccelConfig
	// PoolSize is the number of pooled clients per graph edge
	// (default 4); it bounds each edge's concurrent downstream calls.
	PoolSize int
	// UseBatcher coalesces each edge's downstream calls through an
	// rpc.Batcher over a single connection instead of a client pool.
	UseBatcher bool
	// CallTimeout bounds each downstream call (default 10s).
	CallTimeout time.Duration
	// UnitIters is the spin cost of one work unit (default
	// DefaultUnitIters); tests shrink it to keep runs fast.
	UnitIters int
	// Async serves every node through a completion-queue engine backed
	// by a per-node simulated accelerator: the handler burns the host
	// share (Work + O0 spin units) on an engine worker, parks while the
	// device covers the offload's wall time (L + Kernel/A units), and
	// the pooled continuation fans out to children — the paper's
	// AsyncSameThread threading design, instead of Accel's sync arm
	// where the whole accelerated cost stays on the serving thread.
	// Requires Accel.
	Async bool
	// AsyncWorkers bounds each node's completion-queue engine pool
	// (default 4). Only meaningful with Async.
	AsyncWorkers int
	// Registry, when non-nil, registers per-node latency histograms
	// (topo_<node>_latency_nanos), error counters and the end-to-end
	// histogram (topo_e2e_latency_nanos) for -metrics-out / -debug-addr
	// export. Without it the Runner keeps standalone histograms.
	Registry *telemetry.Registry
	// Trace collects request-centric spans across every tier: each
	// node's server and outgoing edges share a per-node tracer (span
	// Process = node name), Runner.Call roots a synthetic topo.request
	// span, and handlers plant trace context on mid-request fan-out so
	// one request's spans from all tiers assemble into a single tree
	// (internal/tailtrace). Incompatible with UseBatcher: batched
	// exchanges carry no per-call trace context.
	Trace bool
	// TraceSampleRate keeps 1 in N traces when tracing (default 1 =
	// all). The verdict is a deterministic hash of the trace ID, so
	// every tier reaches the same keep/drop decision independently.
	TraceSampleRate int
	// TraceCapacity bounds each tier tracer's span ring (default 65536
	// spans); the oldest spans are evicted first on long soaks.
	TraceCapacity int
}

func (c *RunnerConfig) setDefaults() {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.UnitIters <= 0 {
		c.UnitIters = DefaultUnitIters
	}
	if c.AsyncWorkers <= 0 {
		c.AsyncWorkers = 4
	}
}

// edgeCaller is one graph edge's downstream transport: a ClientPool by
// default, or a Batcher over one connection with UseBatcher.
type edgeCaller interface {
	CallContext(ctx context.Context, req rpc.Message) (rpc.Message, error)
	Close() error
}

// batcherCaller adapts a Batcher plus its underlying client to edgeCaller.
type batcherCaller struct {
	b *rpc.Batcher
	c *rpc.Client
}

func (bc *batcherCaller) CallContext(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	return bc.b.CallContext(ctx, req)
}

func (bc *batcherCaller) Close() error {
	err := bc.b.Close()
	if cerr := bc.c.Close(); err == nil {
		err = cerr
	}
	return err
}

// nodeRuntime is one live node: a real rpc.Server on loopback plus the
// edge callers for its children.
type nodeRuntime struct {
	node  *Node
	depth int
	iters int64 // local spin cost per request (host share under Async)

	// Async mode: the node's simulated accelerator covers devIters
	// worth of wall time per request while the continuation parks.
	devIters int64
	dev      *kernels.SimAccel
	eng      *rpc.Engine
	resumeFn rpc.ResumeFunc // bound once so parking allocates no closure

	lis   net.Listener
	srv   *rpc.Server
	edges []edgeCaller // index-aligned with node.Children

	latency *telemetry.Histogram
	errors  *telemetry.Counter
	tracer  *telemetry.Tracer // per-node span sink (nil without Trace)

	runner *Runner
}

// Runner drives a Graph as live rpc.Servers on loopback.
type Runner struct {
	graph *Graph
	cfg   RunnerConfig

	nodes  []*nodeRuntime // graph declaration order
	byName map[string]*nodeRuntime
	roots  []edgeCaller // index-aligned with graph.Roots()
	e2e    *telemetry.Histogram
	tracer *telemetry.Tracer // the injector's span sink (nil without Trace)

	serveErrs chan error
	closeOnce sync.Once
	closeErr  error
	started   bool
}

// NewRunner validates the configuration against the graph. Call Start
// to bring the servers up.
func NewRunner(g *Graph, cfg RunnerConfig) (*Runner, error) {
	if g == nil || len(g.Nodes) == 0 {
		return nil, fmt.Errorf("topology: runner: empty graph")
	}
	if cfg.Accel != nil {
		if err := cfg.Accel.validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Async && cfg.Accel == nil {
		return nil, fmt.Errorf("topology: runner: Async requires Accel (the offload parameters)")
	}
	if cfg.Async && cfg.UseBatcher {
		return nil, fmt.Errorf("topology: runner: Async and UseBatcher are mutually exclusive (async servers do not accept batch frames)")
	}
	if cfg.Trace && cfg.UseBatcher {
		return nil, fmt.Errorf("topology: runner: Trace and UseBatcher are mutually exclusive (batched exchanges carry no per-call trace context)")
	}
	cfg.setDefaults()
	r := &Runner{
		graph:     g,
		cfg:       cfg,
		byName:    make(map[string]*nodeRuntime, len(g.Nodes)),
		serveErrs: make(chan error, len(g.Nodes)),
	}
	if cfg.Trace {
		r.tracer = cfg.newTracer("client")
	}
	var err error
	if r.e2e, err = r.histogram("topo_e2e_latency_nanos",
		"end-to-end topology request latency in nanoseconds"); err != nil {
		return nil, err
	}
	for _, n := range g.Nodes {
		units := n.TotalUnits()
		var devUnits float64
		if cfg.Accel != nil {
			units = cfg.Accel.AcceleratedUnits(n)
			if cfg.Async {
				// Split the accelerated cost: Work + O0 stays on the
				// engine worker, L + Kernel/A elapses on the device
				// while the continuation is parked.
				devUnits = cfg.Accel.L + n.Kernel/cfg.Accel.A
				units -= devUnits
			}
		}
		nr := &nodeRuntime{
			node:     n,
			depth:    g.Depth(n.Name),
			iters:    int64(units * float64(cfg.UnitIters)),
			devIters: int64(devUnits * float64(cfg.UnitIters)),
			runner:   r,
		}
		nr.resumeFn = nr.resumeAsync
		if cfg.Trace {
			nr.tracer = cfg.newTracer(n.Name)
		}
		if nr.latency, err = r.histogram("topo_"+metricName(n.Name)+"_latency_nanos",
			"per-request latency at node "+n.Name+" in nanoseconds"); err != nil {
			return nil, err
		}
		if cfg.Registry != nil {
			if nr.errors, err = cfg.Registry.Counter("topo_"+metricName(n.Name)+"_errors_total",
				"failed requests at node "+n.Name); err != nil {
				return nil, err
			}
		} else {
			nr.errors = &telemetry.Counter{}
		}
		r.nodes = append(r.nodes, nr)
		r.byName[n.Name] = nr
	}
	return r, nil
}

// newTracer builds one tier's span sink at the configured ring capacity
// and head-sampling rate.
func (c *RunnerConfig) newTracer(process string) *telemetry.Tracer {
	t := telemetry.NewTracer(process)
	if c.TraceCapacity > 0 {
		t.SetCapacity(c.TraceCapacity)
	}
	t.SetSampleRate(c.TraceSampleRate)
	return t
}

func (r *Runner) histogram(name, help string) (*telemetry.Histogram, error) {
	if r.cfg.Registry != nil {
		return r.cfg.Registry.Histogram(name, help)
	}
	return telemetry.NewHistogram(name, help), nil
}

// metricName lowers a node name into the Prometheus charset.
func metricName(node string) string {
	return strings.ToLower(strings.ReplaceAll(node, "-", "_"))
}

// Graph returns the topology under the runner.
func (r *Runner) Graph() *Graph { return r.graph }

// Start brings every node's server up on its own loopback listener,
// then dials the graph's edges (child servers must be accepting before
// parents connect). Cancelling ctx force-closes all connections; use
// Close for a graceful drain.
func (r *Runner) Start(ctx context.Context) error {
	if r.started {
		return fmt.Errorf("topology: runner already started")
	}
	r.started = true
	var perIter float64 // calibrated nanoseconds per spin iteration
	if r.cfg.Async {
		perIter = calibrateSpinNanos()
	}
	for _, nr := range r.nodes {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			r.Close() //modelcheck:ignore errdrop — best-effort unwind, the listen error is reported
			return fmt.Errorf("topology: node %s: %w", nr.node.Name, err)
		}
		nr.lis = lis
		var srv *rpc.Server
		if r.cfg.Async {
			srv, err = nr.startAsync(perIter)
		} else {
			srv, err = rpc.NewServer(nr.handle, nil)
		}
		if err != nil {
			r.Close() //modelcheck:ignore errdrop — best-effort unwind, the server error is reported
			return fmt.Errorf("topology: node %s: %w", nr.node.Name, err)
		}
		if nr.tracer != nil {
			srv.Instrument(&rpc.Instrumentation{Tracer: nr.tracer})
		}
		nr.srv = srv
		go func(nr *nodeRuntime) {
			if err := nr.srv.Serve(ctx, nr.lis); err != nil && ctx.Err() == nil {
				select {
				case r.serveErrs <- fmt.Errorf("topology: node %s: %w", nr.node.Name, err):
				default:
				}
			}
		}(nr)
	}
	for _, nr := range r.nodes {
		for _, child := range nr.node.Children {
			// The edge's spans (rpc.Call and its stages) belong to the
			// calling node's timeline, so the parent's tracer rides along.
			ec, err := r.dialEdge(r.byName[child], nr.tracer)
			if err != nil {
				r.Close() //modelcheck:ignore errdrop — best-effort unwind, the dial error is reported
				return fmt.Errorf("topology: edge %s -> %s: %w", nr.node.Name, child, err)
			}
			nr.edges = append(nr.edges, ec)
		}
	}
	for _, root := range r.graph.Roots() {
		ec, err := r.dialEdge(r.byName[root], r.tracer)
		if err != nil {
			r.Close() //modelcheck:ignore errdrop — best-effort unwind, the dial error is reported
			return fmt.Errorf("topology: root %s: %w", root, err)
		}
		r.roots = append(r.roots, ec)
	}
	return nil
}

// dialEdge connects an upstream caller to a node's listener; tracer
// (optional) instruments every pooled client so each downstream call
// produces a joined rpc.Call span on the caller's timeline.
func (r *Runner) dialEdge(target *nodeRuntime, tracer *telemetry.Tracer) (edgeCaller, error) {
	addr := target.lis.Addr().String()
	dial := func() (*rpc.Client, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		c, err := rpc.NewClient(conn, nil)
		if err != nil {
			return nil, err
		}
		if tracer != nil {
			c.Instrument(&rpc.Instrumentation{Tracer: tracer})
		}
		return c, nil
	}
	if r.cfg.UseBatcher {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		b, err := rpc.NewBatcher(c, rpc.BatcherConfig{})
		if err != nil {
			c.Close() //modelcheck:ignore errdrop — best-effort unwind, the batcher error is reported
			return nil, err
		}
		return &batcherCaller{b: b, c: c}, nil
	}
	return rpc.NewClientPool(r.cfg.PoolSize, dial)
}

// handle is every node's rpc.Handler: burn the node's local spin cost,
// then fan out to all children concurrently and wait for each response.
// Per-node latency (handler entry to return, i.e. including the whole
// downstream subtree) is recorded on success.
func (nr *nodeRuntime) handle(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	start := time.Now()
	sp := telemetry.SpanFromContext(ctx) // the server span, when traced
	spinIters(nr.iters)
	sp.ChildDoneCat("topo.work", telemetry.CatWork, start, time.Since(start))
	if err := nr.fanOut(ctx, req, sp); err != nil {
		nr.errors.Inc()
		return rpc.Message{}, err
	}
	nr.latency.Record(float64(time.Since(start)))
	return rpc.Message{Method: req.Method, Payload: []byte{1}}, nil
}

// fanOut issues req to every child concurrently and waits for all of
// them, returning the first failure. sp (optional) is the node's
// server-side span: its trace context rides the downstream requests so
// each child tier joins the same trace.
func (nr *nodeRuntime) fanOut(ctx context.Context, req rpc.Message, sp *telemetry.Span) error {
	if len(nr.edges) == 0 {
		return nil
	}
	errc := make(chan error, len(nr.edges))
	for i := range nr.edges {
		go func(i int) {
			cctx, cancel := context.WithTimeout(ctx, nr.runner.cfg.CallTimeout)
			defer cancel()
			_, err := nr.edges[i].CallContext(cctx, rpc.WithTraceContext(rpc.Message{
				Method:  nr.node.Children[i] + ".req",
				Payload: req.Payload,
			}, sp))
			errc <- err
		}(i)
	}
	var firstErr error
	for range nr.edges {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("%s: downstream: %w", nr.node.Name, firstErr)
	}
	return nil
}

// startAsync stands up the node's accelerator, completion-queue engine
// and async server. perIter converts calibrated spin units into the
// device's wall-time latency.
func (nr *nodeRuntime) startAsync(perIter float64) (*rpc.Server, error) {
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{
		Latency: time.Duration(perIter * float64(nr.devIters)),
	})
	if err != nil {
		return nil, err
	}
	eng, err := rpc.NewEngine(rpc.EngineConfig{Workers: nr.runner.cfg.AsyncWorkers})
	if err != nil {
		dev.Close() //modelcheck:ignore errdrop — best-effort unwind, the engine error is reported
		return nil, err
	}
	nr.dev, nr.eng = dev, eng
	return rpc.NewAsyncServer(nr.handleAsync, eng, nil)
}

// handleAsync burns the host share of the node's cost, then parks the
// request on the node's device for the offload's wall time. Nodes whose
// device time rounds to zero still park: the engine round trip is the
// per-offload overhead the async model charges.
func (nr *nodeRuntime) handleAsync(_ context.Context, req rpc.Message, ac *rpc.AsyncCall) (rpc.Message, error) {
	ac.Scratch = uint64(time.Now().UnixNano())
	spinIters(nr.iters)
	if err := ac.Park(nr.dev, uint64(nr.devIters), nr.resumeFn); err != nil {
		nr.errors.Inc()
		return rpc.Message{}, err
	}
	return rpc.Message{}, nil
}

// resumeAsync is the parked continuation: the device has covered the
// offload latency, so fan out to the children and respond. Latency is
// recorded from handler entry (stashed in Scratch) so sync and async
// tiers report the same quantity.
func (nr *nodeRuntime) resumeAsync(ctx context.Context, ac *rpc.AsyncCall) (rpc.Message, error) {
	req := ac.Request()
	if err := nr.fanOut(ctx, req, ac.Span()); err != nil {
		nr.errors.Inc()
		return rpc.Message{}, err
	}
	nr.latency.Record(float64(time.Now().UnixNano() - int64(ac.Scratch)))
	return rpc.Message{Method: req.Method, Payload: []byte{1}}, nil
}

// calibrateSpinNanos times the spin loop so device latencies line up
// with what the same units would cost on the host.
func calibrateSpinNanos() float64 {
	const n = 1 << 21
	start := time.Now()
	spinIters(n)
	return float64(time.Since(start)) / float64(n)
}

// Call injects one request at every root concurrently and waits for all
// of them; the slowest root defines the request's end-to-end latency,
// which is recorded in the e2e histogram on success.
func (r *Runner) Call(ctx context.Context, payload []byte) (time.Duration, error) {
	if len(r.roots) == 0 {
		return 0, fmt.Errorf("topology: runner not started")
	}
	// The synthetic root span brackets the whole injection, so a traced
	// request's critical-path attribution and its measured end-to-end
	// latency are the same interval by construction.
	sp := r.tracer.Start("topo.request")
	start := time.Now()
	errc := make(chan error, len(r.roots))
	for i := range r.roots {
		go func(i int) {
			cctx, cancel := context.WithTimeout(ctx, r.cfg.CallTimeout)
			defer cancel()
			_, err := r.roots[i].CallContext(cctx, rpc.WithTraceContext(rpc.Message{
				Method:  r.graph.Roots()[i] + ".req",
				Payload: payload,
			}, sp))
			errc <- err
		}(i)
	}
	var firstErr error
	for range r.roots {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	elapsed := time.Since(start)
	sp.End()
	if firstErr != nil {
		return elapsed, firstErr
	}
	r.e2e.Record(float64(elapsed))
	return elapsed, nil
}

// E2ESnapshot returns the end-to-end latency histogram's current state;
// the measured-vs-model test windows it with Delta to exclude warmup.
func (r *Runner) E2ESnapshot() telemetry.HistogramSnapshot { return r.e2e.Snapshot() }

// AsyncStats sums every node engine's counters — the live view behind
// the debug server's async panel. Zero value when the runner is not in
// Async mode (or not started).
func (r *Runner) AsyncStats() rpc.EngineStats {
	var total rpc.EngineStats
	for _, nr := range r.nodes {
		if nr.eng == nil {
			continue
		}
		s := nr.eng.Stats()
		total.Workers += s.Workers
		total.InFlight += s.InFlight
		total.Parked += s.Parked
		total.QueueDepth += s.QueueDepth
		total.Served += s.Served
		total.Errors += s.Errors
		total.QueueWaitNanos += s.QueueWaitNanos
		total.ParkWaitNanos += s.ParkWaitNanos
	}
	return total
}

// Tracing reports whether the runner collects request spans.
func (r *Runner) Tracing() bool { return r.tracer != nil }

// Spans concatenates every tier's retained spans with the injector's —
// the raw material internal/tailtrace assembles into per-request trace
// trees. Nil when the runner is not tracing.
func (r *Runner) Spans() []telemetry.SpanData {
	if r.tracer == nil {
		return nil
	}
	out := r.tracer.Spans()
	for _, nr := range r.nodes {
		out = append(out, nr.tracer.Spans()...)
	}
	return out
}

// TraceStats summarizes span retention across all tiers.
type TraceStats struct {
	Spans      int    // spans currently retained
	Dropped    uint64 // spans evicted from the rings
	SampledOut uint64 // spans discarded by head sampling
}

// TraceStats sums retention counters over the injector and every tier.
func (r *Runner) TraceStats() TraceStats {
	var ts TraceStats
	tracers := []*telemetry.Tracer{r.tracer}
	for _, nr := range r.nodes {
		tracers = append(tracers, nr.tracer)
	}
	for _, t := range tracers {
		if t == nil {
			continue
		}
		ts.Spans += len(t.Spans())
		ts.Dropped += t.Dropped()
		ts.SampledOut += t.SampledOut()
	}
	return ts
}

// ServeErr reports the first background Serve failure, if any.
func (r *Runner) ServeErr() error {
	select {
	case err := <-r.serveErrs:
		return err
	default:
		return nil
	}
}

// Close tears the topology down: root injectors first, then every
// edge's clients (draining in-flight downstream calls with connection
// errors), then the servers. Close is idempotent and safe to call
// concurrently; repeat calls return the first result.
func (r *Runner) Close() error {
	r.closeOnce.Do(func() {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		for _, ec := range r.roots {
			keep(ec.Close())
		}
		for _, nr := range r.nodes {
			for _, ec := range nr.edges {
				keep(ec.Close())
			}
		}
		for _, nr := range r.nodes {
			if nr.srv != nil {
				keep(nr.srv.Close())
			}
			if nr.eng != nil {
				keep(nr.eng.Close())
			}
			if nr.dev != nil {
				keep(nr.dev.Close())
			}
			if nr.lis != nil {
				// Server.Close already closed the listener on the normal
				// path; this covers unwinding a partially-started node.
				nr.lis.Close() //modelcheck:ignore errdrop — second close of an already-closed listener
			}
		}
		r.closeErr = first
	})
	return r.closeErr
}

// TierStat is one node's measured latency distribution plus its tail
// amplification relative to its children.
type TierStat struct {
	Node     string  `json:"node"`
	Depth    int     `json:"depth"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50Nanos float64 `json:"p50_nanos"`
	P99Nanos float64 `json:"p99_nanos"`
	// Amplification is this node's p99 over the largest child p99 — how
	// much the tail grew across this hop (1 for leaves).
	Amplification float64 `json:"amplification"`
}

// Report is a point-in-time view of the running topology.
type Report struct {
	Name  string     `json:"name"`
	Tiers []TierStat `json:"tiers"` // sorted by (depth, name)
	// E2E summarizes the injected requests' end-to-end latency.
	E2ERequests uint64  `json:"e2e_requests"`
	E2EP50Nanos float64 `json:"e2e_p50_nanos"`
	E2EP99Nanos float64 `json:"e2e_p99_nanos"`
}

// Report snapshots every node's histogram and computes hop-by-hop tail
// amplification. Safe to call while the generator is running; the debug
// server's topology panel renders it live.
func (r *Runner) Report() Report {
	rep := Report{Name: r.graph.Name}
	snaps := make(map[string]telemetry.HistogramSnapshot, len(r.nodes))
	for _, nr := range r.nodes {
		snaps[nr.node.Name] = nr.latency.Snapshot()
	}
	for _, nr := range r.nodes {
		s := snaps[nr.node.Name]
		ts := TierStat{
			Node:          nr.node.Name,
			Depth:         nr.depth,
			Requests:      s.Count,
			Errors:        nr.errors.Value(),
			P50Nanos:      s.Quantile(0.5),
			P99Nanos:      s.Quantile(0.99),
			Amplification: 1,
		}
		maxChild := 0.0
		for _, c := range nr.node.Children {
			if p := snaps[c].Quantile(0.99); p > maxChild {
				maxChild = p
			}
		}
		if maxChild > 0 {
			ts.Amplification = ts.P99Nanos / maxChild
		}
		rep.Tiers = append(rep.Tiers, ts)
	}
	sort.Slice(rep.Tiers, func(i, j int) bool {
		if rep.Tiers[i].Depth != rep.Tiers[j].Depth {
			return rep.Tiers[i].Depth < rep.Tiers[j].Depth
		}
		return rep.Tiers[i].Node < rep.Tiers[j].Node
	})
	e2e := r.e2e.Snapshot()
	rep.E2ERequests = e2e.Count
	rep.E2EP50Nanos = e2e.Quantile(0.5)
	rep.E2EP99Nanos = e2e.Quantile(0.99)
	return rep
}

// spinSink defeats dead-code elimination of the spin loop; handlers on
// different nodes spin concurrently, hence the atomic.
var spinSink atomic.Uint64

// spinIters burns a deterministic amount of CPU: the same xorshift loop
// the repository's single-service measured-vs-model test uses, so spin
// units are directly comparable.
func spinIters(n int64) {
	x := uint64(2463534242)
	for i := int64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Add(x)
}
