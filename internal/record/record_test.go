package record

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeOK:    "ok",
		OutcomeError: "error",
		OutcomeRetry: "retry",
		Outcome(9):   "outcome(9)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
	if Outcome(200).Valid() {
		t.Error("Outcome(200) reported valid")
	}
}

func TestTraceValidate(t *testing.T) {
	good := Trace{
		Services: []string{"cache1", "web1"},
		Events: []Event{
			{ArrivalNanos: 0, Service: 1},
			{ArrivalNanos: 0, Service: 0},
			{ArrivalNanos: 50, Service: 1, PayloadBytes: 9, Granularity: 3, Outcome: OutcomeRetry},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good trace: %v", err)
	}
	bad := []Trace{
		{Services: []string{""}},
		{Services: []string{"a", "a"}},
		{Services: []string{"a"}, Events: []Event{{ArrivalNanos: -1}}},
		{Services: []string{"a"}, Events: []Event{{ArrivalNanos: 5}, {ArrivalNanos: 4}}},
		{Services: []string{"a"}, Events: []Event{{Service: 1}}},
		{Services: []string{"a"}, Events: []Event{{Outcome: outcomeCount}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d: want error", i)
		}
	}
}

// Canonicalize produces one unique form: the same event multiset
// recorded under different interning orders and completion orders
// encodes byte-identically.
func TestCanonicalizeIsOrderInsensitive(t *testing.T) {
	a := &Trace{
		Services: []string{"web1", "cache1"},
		Events: []Event{
			{ArrivalNanos: 100, Service: 0, PayloadBytes: 7},
			{ArrivalNanos: 100, Service: 1, PayloadBytes: 3},
			{ArrivalNanos: 40, Service: 1},
		},
	}
	b := &Trace{
		Services: []string{"cache1", "web1"},
		Events: []Event{
			{ArrivalNanos: 40, Service: 0},
			{ArrivalNanos: 100, Service: 0, PayloadBytes: 3},
			{ArrivalNanos: 100, Service: 1, PayloadBytes: 7},
		},
	}
	a.Canonicalize()
	b.Canonicalize()
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Errorf("canonical encodings differ:\n a: %x\n b: %x", ea, eb)
	}
	if a.Services[0] != "cache1" || a.Services[1] != "web1" {
		t.Errorf("services not sorted: %v", a.Services)
	}
}

func TestTraceDuration(t *testing.T) {
	var empty Trace
	if d := empty.Duration(); d != 0 {
		t.Errorf("empty trace duration = %v", d)
	}
	tr := Trace{Services: []string{"a"}, Events: []Event{{ArrivalNanos: 10}, {ArrivalNanos: 2500}}}
	if d := tr.Duration(); d != 2500*time.Nanosecond {
		t.Errorf("duration = %v, want 2.5us", d)
	}
}

func TestServiceEvents(t *testing.T) {
	tr := Trace{
		Services: []string{"a", "b"},
		Events: []Event{
			{ArrivalNanos: 1, Service: 0},
			{ArrivalNanos: 2, Service: 1},
			{ArrivalNanos: 3, Service: 0},
		},
	}
	groups := tr.ServiceEvents()
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][1].ArrivalNanos != 3 {
		t.Errorf("arrival order not preserved within group: %v", groups[0])
	}
}

// A nil recorder is the disabled state: every method is a no-op or
// returns the zero value, and nothing panics.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record("cache1", 1, 1, OutcomeOK)
	r.RecordAt(5, "cache1", 1, 1, OutcomeOK)
	if s := r.State(); s.Recording {
		t.Error("nil recorder reports Recording")
	}
	if tr := r.Snapshot(); len(tr.Events) != 0 {
		t.Error("nil recorder snapshot has events")
	}
	if _, err := r.WriteFile(filepath.Join(t.TempDir(), "x.trace")); err == nil {
		t.Error("nil recorder WriteFile: want error")
	}
}

func TestRecorderSnapshotCanonical(t *testing.T) {
	r := NewRecorder(16)
	r.RecordAt(300, "web1", 10, 5, OutcomeOK)
	r.RecordAt(100, "cache1", 20, 20, OutcomeError)
	r.RecordAt(200, "web1", 30, 15, OutcomeOK)
	tr := r.Snapshot()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"cache1", "web1"}; !reflect.DeepEqual(tr.Services, want) {
		t.Errorf("services = %v, want %v", tr.Services, want)
	}
	arrivals := []int64{tr.Events[0].ArrivalNanos, tr.Events[1].ArrivalNanos, tr.Events[2].ArrivalNanos}
	if !reflect.DeepEqual(arrivals, []int64{100, 200, 300}) {
		t.Errorf("arrivals = %v, want sorted", arrivals)
	}
	st := r.State()
	if !st.Recording || st.Total != 3 || st.Buffered != 3 || st.Dropped != 0 || st.Services != 2 {
		t.Errorf("state = %+v", st)
	}
	if st.ApproxBytes <= 0 {
		t.Errorf("approx bytes = %d", st.ApproxBytes)
	}
}

// The ring keeps the newest events and counts overwrites as drops.
func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.RecordAt(int64(i*1000), "svc", uint64(i), 1, OutcomeOK)
	}
	st := r.State()
	if st.Total != 10 || st.Buffered != 4 || st.Dropped != 6 {
		t.Fatalf("state = %+v, want total 10 / buffered 4 / dropped 6", st)
	}
	tr := r.Snapshot()
	if len(tr.Events) != 4 {
		t.Fatalf("snapshot has %d events", len(tr.Events))
	}
	for i, e := range tr.Events {
		if want := uint64(6 + i); e.PayloadBytes != want {
			t.Errorf("event %d payload = %d, want %d (newest window)", i, e.PayloadBytes, want)
		}
	}
}

func TestRecorderNegativeArrivalClamps(t *testing.T) {
	r := NewRecorder(4)
	r.RecordAt(-5, "svc", 1, 1, OutcomeOK)
	r.RecordAt(3, "svc", 1, 1, Outcome(77)) // unknown outcome coerced
	tr := r.Snapshot()
	if tr.Events[0].ArrivalNanos != 0 {
		t.Errorf("negative arrival not clamped: %d", tr.Events[0].ArrivalNanos)
	}
	if tr.Events[1].Outcome != OutcomeError {
		t.Errorf("unknown outcome recorded as %v", tr.Events[1].Outcome)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("recorded trace must always validate: %v", err)
	}
}

func TestRecorderWriteFile(t *testing.T) {
	r := NewRecorder(8)
	r.Record("cache1", 64, 64, OutcomeOK)
	path := filepath.Join(t.TempDir(), "dump.trace")
	n, err := r.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("wrote %d bytes", n)
	}
	st := r.State()
	if st.LastDumpPath != path || st.LastDumpBytes != n || st.LastErr != nil {
		t.Errorf("state after dump = %+v", st)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 || got.Services[0] != "cache1" {
		t.Errorf("round-tripped dump = %+v", got)
	}

	if _, err := r.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir.trace")); err == nil {
		t.Fatal("unwritable path: want error")
	}
	if st := r.State(); st.LastErr == nil {
		t.Error("dump failure not surfaced in state")
	}
}

func TestCyclesToNanos(t *testing.T) {
	if got := CyclesToNanos(2e9, 1e9); got != 2_000_000_000 {
		t.Errorf("2e9 cycles at 1GHz = %dns", got)
	}
	if got := CyclesToNanos(100, 0); got != 0 {
		t.Errorf("zero hz = %d", got)
	}
	if got := CyclesToNanos(-5, 1e9); got != 0 {
		t.Errorf("negative cycles = %d", got)
	}
	if got := CyclesToNanos(1e30, 1); got != 1<<63-1 {
		t.Errorf("overflow not saturated: %d", got)
	}
}

// The disabled (nil) path and the enabled steady-state path both stay
// allocation-free, so the hooks can live in hot loops.
func TestRecordAllocs(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		nilRec.Record("cache1", 64, 64, OutcomeOK)
	}); n != 0 {
		t.Errorf("nil recorder: %v allocs/op", n)
	}
	r := NewRecorder(1 << 10)
	r.Record("cache1", 1, 1, OutcomeOK) // intern outside the measured loop
	if n := testing.AllocsPerRun(100, func() {
		r.Record("cache1", 64, 64, OutcomeOK)
	}); n != 0 {
		t.Errorf("live recorder steady state: %v allocs/op", n)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record("cache1", 64, 64, OutcomeOK)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record("cache1", 64, 64, OutcomeOK)
	}
}
