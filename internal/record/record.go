// Package record implements the workload flight recorder: a low-overhead
// capture of a live run's request stream (arrival time, service, payload
// size, offload granularity, outcome) into a compact versioned binary
// trace, plus deterministic replay of such traces through the simulator
// (see replay.go) and the real RPC serving path.
//
// The paper's acceleration estimates are only as good as the workload
// model driving them; recording the offered stream of a real run and
// replaying it bit-for-bit lets the model and the serving stack be
// compared on identical arrivals instead of independently drawn ones.
//
// The recorder follows the repository's nil-gating discipline: every
// method is safe on a nil *Recorder and the disabled path is a single nil
// check — 0 allocs/op, cheap enough to leave in the hot path permanently.
package record

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Outcome classifies how a recorded request finished.
type Outcome uint8

const (
	// OutcomeOK marks a request that completed successfully.
	OutcomeOK Outcome = iota
	// OutcomeError marks a request that failed (transport error, server
	// error response, deadline exceeded).
	OutcomeError
	// OutcomeRetry marks a request that was a retry of an earlier failed
	// request — the signature shape of a retry storm.
	OutcomeRetry

	outcomeCount
)

// Valid reports whether o is a known outcome value.
func (o Outcome) Valid() bool { return o < outcomeCount }

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	case OutcomeRetry:
		return "retry"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Event is one recorded request. Arrival times are nanoseconds from the
// start of the recording; on disk they are delta-encoded, so a Trace's
// events are always sorted by ArrivalNanos.
type Event struct {
	// ArrivalNanos is the request's arrival, in nanoseconds since the
	// recording began.
	ArrivalNanos int64
	// Service indexes into the owning Trace's Services table.
	Service uint32
	// PayloadBytes is the request payload size.
	PayloadBytes uint64
	// Granularity is the offload granularity g in bytes — the unit the
	// paper's acceleration model keys every break-even decision on.
	Granularity uint64
	// Outcome is how the request finished.
	Outcome Outcome
}

// Trace is a recorded request stream: an interned service-name table and
// the events referencing it.
type Trace struct {
	Services []string
	Events   []Event
}

// Validate checks the invariants Encode relies on: service names
// non-empty and unique, events sorted by arrival with non-negative
// times, service indices in range, and outcomes known.
func (t *Trace) Validate() error {
	seen := make(map[string]bool, len(t.Services))
	for i, s := range t.Services {
		if s == "" {
			return fmt.Errorf("record: service %d has an empty name", i)
		}
		if len(s) > maxServiceName {
			return fmt.Errorf("record: service name %.20q... exceeds %d bytes", s, maxServiceName)
		}
		if seen[s] {
			return fmt.Errorf("record: duplicate service name %q", s)
		}
		seen[s] = true
	}
	prev := int64(0)
	for i := range t.Events {
		e := &t.Events[i]
		if e.ArrivalNanos < 0 {
			return fmt.Errorf("record: event %d arrival %d is negative", i, e.ArrivalNanos)
		}
		if e.ArrivalNanos < prev {
			return fmt.Errorf("record: event %d arrival %d precedes event %d (%d)", i, e.ArrivalNanos, i-1, prev)
		}
		prev = e.ArrivalNanos
		if int(e.Service) >= len(t.Services) {
			return fmt.Errorf("record: event %d references service %d of %d", i, e.Service, len(t.Services))
		}
		if !e.Outcome.Valid() {
			return fmt.Errorf("record: event %d has unknown outcome %d", i, e.Outcome)
		}
	}
	return nil
}

// Duration returns the arrival time of the last event — the length of
// the recorded stream.
func (t *Trace) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].ArrivalNanos)
}

// DueTimes returns each event's arrival offset from the start of the
// trace with inter-arrival gaps dilated by dilate (values ≤ 0 or NaN
// mean 1 — replay at recorded speed). This is the shared arrival
// schedule of every open-loop consumer: ReplayRPC and the topology load
// generator both issue event i at DueTimes[i] after their start.
func (t *Trace) DueTimes(dilate float64) []time.Duration {
	if !(dilate > 0) {
		dilate = 1
	}
	due := make([]time.Duration, len(t.Events))
	for i := range t.Events {
		due[i] = time.Duration(float64(t.Events[i].ArrivalNanos) * dilate)
	}
	return due
}

// Canonicalize rewrites the trace into its unique canonical form:
// services sorted by name (event indices remapped to match) and events
// sorted by (arrival, service, payload, granularity, outcome). Two
// recordings of the same request multiset canonicalize to byte-identical
// encodings regardless of the interning or completion order the run
// happened to produce.
func (t *Trace) Canonicalize() {
	perm := make([]int, len(t.Services))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return t.Services[perm[a]] < t.Services[perm[b]] })
	remap := make([]uint32, len(t.Services))
	sorted := make([]string, len(t.Services))
	for newIdx, oldIdx := range perm {
		remap[oldIdx] = uint32(newIdx)
		sorted[newIdx] = t.Services[oldIdx]
	}
	t.Services = sorted
	for i := range t.Events {
		if int(t.Events[i].Service) < len(remap) {
			t.Events[i].Service = remap[t.Events[i].Service]
		}
	}
	sort.Slice(t.Events, func(a, b int) bool {
		x, y := &t.Events[a], &t.Events[b]
		if x.ArrivalNanos != y.ArrivalNanos {
			return x.ArrivalNanos < y.ArrivalNanos
		}
		if x.Service != y.Service {
			return x.Service < y.Service
		}
		if x.PayloadBytes != y.PayloadBytes {
			return x.PayloadBytes < y.PayloadBytes
		}
		if x.Granularity != y.Granularity {
			return x.Granularity < y.Granularity
		}
		return x.Outcome < y.Outcome
	})
}

// ServiceEvents returns the trace's events grouped per service, in
// service-table order; arrival order is preserved within each group.
func (t *Trace) ServiceEvents() [][]Event {
	groups := make([][]Event, len(t.Services))
	for _, e := range t.Events {
		if int(e.Service) < len(groups) {
			groups[e.Service] = append(groups[e.Service], e)
		}
	}
	return groups
}

// DefaultCapacity is the ring size NewRecorder uses when the caller
// passes capacity <= 0: enough for several seconds of a busy run while
// staying a few megabytes.
const DefaultCapacity = 1 << 16

// Recorder captures events into a fixed-capacity ring buffer. When the
// ring is full the oldest events are overwritten (and counted as
// dropped) — the recorder is a flight recorder, not an unbounded log,
// so an anomaly dump always holds the most recent window.
//
// All methods are safe on a nil receiver; a nil *Recorder is the
// disabled state.
type Recorder struct {
	start time.Time

	mu       sync.Mutex
	services map[string]uint32
	names    []string
	ring     []Event
	head     int    // next write position
	buffered int    // events currently held (<= cap)
	total    uint64 // events ever recorded
	dropped  uint64 // events overwritten by ring wraparound

	lastDumpPath  string
	lastDumpBytes int
	lastErr       error
}

// NewRecorder returns a recorder with the given ring capacity
// (DefaultCapacity if capacity <= 0). The arrival clock starts now.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		start:    time.Now(),
		services: make(map[string]uint32, 16),
		ring:     make([]Event, capacity),
	}
}

// Record captures one live request, stamping it with the wall-clock
// offset from the recorder's start. No-op on a nil recorder.
func (r *Recorder) Record(service string, payloadBytes, granularity uint64, outcome Outcome) {
	if r == nil {
		return
	}
	r.RecordAt(int64(time.Since(r.start)), service, payloadBytes, granularity, outcome)
}

// RecordAt captures one request at an explicit arrival offset — the
// entry point for simulated time, where the caller converts cycles to
// nanoseconds itself. No-op on a nil recorder; negative arrivals clamp
// to zero so a replayed trace can never fail to re-encode.
func (r *Recorder) RecordAt(arrivalNanos int64, service string, payloadBytes, granularity uint64, outcome Outcome) {
	if r == nil {
		return
	}
	if arrivalNanos < 0 {
		arrivalNanos = 0
	}
	if !outcome.Valid() {
		outcome = OutcomeError
	}
	r.mu.Lock()
	idx, ok := r.services[service]
	if !ok {
		idx = uint32(len(r.names))
		r.services[service] = idx
		r.names = append(r.names, service)
	}
	r.ring[r.head] = Event{
		ArrivalNanos: arrivalNanos,
		Service:      idx,
		PayloadBytes: payloadBytes,
		Granularity:  granularity,
		Outcome:      outcome,
	}
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	if r.buffered < len(r.ring) {
		r.buffered++
	} else {
		r.dropped++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot copies the buffered events out as a canonical Trace. The
// recorder keeps running; a snapshot never clears the ring.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return &Trace{}
	}
	r.mu.Lock()
	t := &Trace{
		Services: append([]string(nil), r.names...),
		Events:   make([]Event, 0, r.buffered),
	}
	// Oldest first: the ring's logical start is head-buffered (mod cap).
	start := r.head - r.buffered
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.buffered; i++ {
		t.Events = append(t.Events, r.ring[(start+i)%len(r.ring)])
	}
	r.mu.Unlock()
	t.Canonicalize()
	return t
}

// State describes the recorder for dashboards and debug endpoints.
type State struct {
	Recording bool
	Capacity  int
	Buffered  int    // events currently in the ring
	Total     uint64 // events ever recorded
	Dropped   uint64 // events lost to ring wraparound
	Services  int    // distinct services interned
	// ApproxBytes estimates the encoded size of the buffered window.
	ApproxBytes int
	// LastDumpPath and LastDumpBytes describe the most recent WriteFile
	// (anomaly dump or explicit save); empty/zero when none has happened.
	LastDumpPath  string
	LastDumpBytes int
	// LastErr is the most recent dump failure, nil when healthy.
	LastErr error
}

// State returns the recorder's current state; the zero State (with
// Recording false) on a nil recorder.
func (r *Recorder) State() State {
	if r == nil {
		return State{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	approx := headerOverhead
	for _, n := range r.names {
		approx += uvarintLen(uint64(len(n))) + len(n)
	}
	approx += r.buffered * approxEventBytes
	return State{
		Recording:     true,
		Capacity:      len(r.ring),
		Buffered:      r.buffered,
		Total:         r.total,
		Dropped:       r.dropped,
		Services:      len(r.names),
		ApproxBytes:   approx,
		LastDumpPath:  r.lastDumpPath,
		LastDumpBytes: r.lastDumpBytes,
		LastErr:       r.lastErr,
	}
}

// WriteFile snapshots the ring and writes the encoded trace to path,
// recording the dump in the state surfaced by State. Returns the number
// of bytes written.
func (r *Recorder) WriteFile(path string) (int, error) {
	if r == nil {
		return 0, fmt.Errorf("record: recorder is disabled")
	}
	n, err := r.Snapshot().WriteFile(path)
	r.mu.Lock()
	if err != nil {
		r.lastErr = err
	} else {
		r.lastDumpPath = path
		r.lastDumpBytes = n
		r.lastErr = nil
	}
	r.mu.Unlock()
	return n, err
}

// CyclesToNanos converts a simulator timestamp (cycles at hostHz) to the
// recorder's nanosecond arrival clock, saturating instead of
// overflowing.
func CyclesToNanos(cycles, hostHz float64) int64 {
	if hostHz <= 0 {
		return 0
	}
	ns := cycles / hostHz * 1e9
	if ns >= math.MaxInt64 {
		return math.MaxInt64
	}
	if ns < 0 {
		return 0
	}
	return int64(ns)
}
