package record

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func testTrace() *Trace {
	return &Trace{
		Services: []string{"cache1", "feed1", "web1"},
		Events: []Event{
			{ArrivalNanos: 0, Service: 2, PayloadBytes: 512, Granularity: 128, Outcome: OutcomeOK},
			{ArrivalNanos: 1500, Service: 0, PayloadBytes: 64, Granularity: 64, Outcome: OutcomeOK},
			{ArrivalNanos: 1500, Service: 1, PayloadBytes: 4096, Granularity: 1024, Outcome: OutcomeError},
			{ArrivalNanos: 90000, Service: 0, PayloadBytes: 64, Granularity: 64, Outcome: OutcomeRetry},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := testTrace()
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip changed trace:\n got %+v\nwant %+v", got, tr)
	}
	// Encoding is deterministic: a second encode is byte-identical.
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Error("re-encode is not a fixed point")
	}
}

func TestEncodeEmptyTrace(t *testing.T) {
	var tr Trace
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Services) != 0 || len(got.Events) != 0 {
		t.Errorf("empty round trip = %+v", got)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	tr := &Trace{Services: []string{"a"}, Events: []Event{{Service: 3}}}
	if _, err := tr.Encode(); err == nil {
		t.Fatal("invalid trace encoded")
	}
}

// Hostile inputs: every structural violation is rejected with an error,
// never a panic or an outsized allocation.
func TestDecodeRejectsHostileInputs(t *testing.T) {
	valid, err := testTrace().Encode()
	if err != nil {
		t.Fatal(err)
	}
	truncHeader := valid[:3]
	badMagic := append([]byte("NOPE"), valid[4:]...)
	badVersion := append([]byte(magic), 99)

	hugeServices := append([]byte(magic+"\x01"), binary.AppendUvarint(nil, 1<<40)...)
	emptyName := append([]byte(magic+"\x01"), 1, 0)
	longName := append([]byte(magic+"\x01"), binary.AppendUvarint([]byte{1}, maxServiceName+1)...)
	dupName := append([]byte(magic+"\x01"), 2, 1, 'a', 1, 'a')

	hugeEvents := append([]byte(magic+"\x01"), 0)
	hugeEvents = append(hugeEvents, binary.AppendUvarint(nil, 1<<50)...)

	badService := append([]byte(magic+"\x01"), 1, 1, 'a', 1 /*events*/, 0 /*delta*/, 7 /*svc out of range*/, 0, 0, 0)
	badOutcome := append([]byte(magic+"\x01"), 1, 1, 'a', 1, 0, 0, 0, 0, 200)
	overflow := append([]byte(magic+"\x01"), 1, 1, 'a', 2)
	overflow = append(overflow, binary.AppendUvarint(nil, 1<<63-1)...)
	overflow = append(overflow, 0, 0, 0, byte(OutcomeOK))
	overflow = append(overflow, binary.AppendUvarint(nil, 1<<62)...)
	overflow = append(overflow, 0, 0, 0, byte(OutcomeOK))
	trailing := append(append([]byte(nil), valid...), 0xEE)

	cases := map[string][]byte{
		"empty":            nil,
		"truncated header": truncHeader,
		"bad magic":        badMagic,
		"bad version":      badVersion,
		"huge service cnt": hugeServices,
		"empty name":       emptyName,
		"name too long":    longName,
		"duplicate name":   dupName,
		"huge event count": hugeEvents,
		"service oob":      badService,
		"bad outcome":      badOutcome,
		"arrival overflow": overflow,
		"trailing bytes":   trailing,
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: accepted %x", name, data)
		}
	}
}

func TestDecodeErrorsAreDescriptive(t *testing.T) {
	_, err := Decode([]byte("ACR"))
	if err == nil || !strings.Contains(err.Error(), "record:") {
		t.Errorf("error %v lacks package prefix", err)
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 42, 1<<64 - 1} {
		if got, want := uvarintLen(v), len(binary.AppendUvarint(nil, v)); got != want {
			t.Errorf("uvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}

// FuzzDecodeTrace drives the decoder with arbitrary bytes: any accepted
// input must validate, re-encode, and decode back to the same trace,
// and no input may panic or allocate disproportionately.
func FuzzDecodeTrace(f *testing.F) {
	mustEncode := func(tr *Trace) []byte {
		data, err := tr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	// Valid shapes: empty, single-event, the multi-service fixture, and
	// each synthesized scenario (small, to keep the corpus light).
	f.Add(mustEncode(&Trace{}))
	f.Add(mustEncode(&Trace{Services: []string{"cache1"}, Events: []Event{{PayloadBytes: 64, Granularity: 64}}}))
	f.Add(mustEncode(testTrace()))
	for _, sc := range Scenarios {
		tr, err := Synthesize(sc, 42, 32)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(mustEncode(tr))
	}
	// Hostile shapes: truncation, oversized counts, junk.
	f.Add([]byte(magic))
	f.Add([]byte(magic + "\x01"))
	f.Add(append([]byte(magic+"\x01"), binary.AppendUvarint(nil, 1<<40)...))
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
		re, err := tr.Encode()
		if err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Decode(re)
		if err != nil {
			t.Fatalf("decoding re-encoded trace: %v", err)
		}
		if !reflect.DeepEqual(tr2, tr) {
			t.Errorf("round trip changed trace:\n got %+v\nwant %+v", tr2, tr)
		}
	})
}
