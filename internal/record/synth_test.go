package record

import (
	"bytes"
	"testing"
)

func TestSynthesizeUnknownScenario(t *testing.T) {
	if _, err := Synthesize("full-moon", 1, 10); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// Every scenario yields a valid, canonical, deterministic trace.
func TestSynthesizeScenarios(t *testing.T) {
	for _, sc := range Scenarios {
		tr, err := Synthesize(sc, 7, 512)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", sc, err)
		}
		if len(tr.Events) < 512 {
			t.Errorf("%s: %d events, want >= 512", sc, len(tr.Events))
		}
		for i, e := range tr.Events {
			if e.Granularity > e.PayloadBytes {
				t.Errorf("%s event %d: granularity %d > payload %d", sc, i, e.Granularity, e.PayloadBytes)
			}
		}
		a, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Synthesize(sc, 7, 512)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tr2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same seed produced different traces", sc)
		}
		other, err := Synthesize(sc, 8, 512)
		if err != nil {
			t.Fatal(err)
		}
		c, err := other.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a, c) {
			t.Errorf("%s: different seeds produced identical traces", sc)
		}
	}
}

// The retry storm's signature: retries exist, they cluster in the storm
// window, and the offered load there exceeds the steady sections.
func TestRetryStormShape(t *testing.T) {
	tr, err := Synthesize("retry-storm", 3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var retries, errors int
	for _, e := range tr.Events {
		switch e.Outcome {
		case OutcomeRetry:
			retries++
		case OutcomeError:
			errors++
		}
	}
	if errors == 0 || retries == 0 {
		t.Fatalf("storm has %d errors, %d retries", errors, retries)
	}
	if retries < errors {
		t.Errorf("each error should spawn >= 1 retry: %d errors, %d retries", errors, retries)
	}
	// The storm window's event density must exceed the calm sections'.
	dur := int64(tr.Duration())
	third := dur / 3
	var calm, storm int
	for _, e := range tr.Events {
		if e.ArrivalNanos > third && e.ArrivalNanos < 2*third {
			storm++
		} else {
			calm++
		}
	}
	if storm <= calm/2 {
		t.Errorf("storm window not denser: %d storm vs %d calm events", storm, calm)
	}
}

func TestDiurnalBurstShape(t *testing.T) {
	tr, err := Synthesize("diurnal-burst", 3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// The middle fifth runs at ~4x: its mean inter-arrival gap must be
	// well under the overall mean.
	n := len(tr.Events)
	mid := tr.Events[n*2/5 : n*3/5]
	midSpan := mid[len(mid)-1].ArrivalNanos - mid[0].ArrivalNanos
	midGap := float64(midSpan) / float64(len(mid)-1)
	allGap := float64(tr.Duration()) / float64(n-1)
	if midGap >= allGap/2 {
		t.Errorf("burst window mean gap %.0fns not < half the overall %.0fns", midGap, allGap)
	}
}
