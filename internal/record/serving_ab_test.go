package record

import (
	"context"
	"testing"
	"time"
)

func TestReplayServingABValidation(t *testing.T) {
	if _, err := ReplayServingAB(context.Background(), &Trace{}, ServingABConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
}

// Both serving arms replay every recorded event error-free; under a
// retry-storm burst with a small worker pool and a non-trivial offload
// latency, the parked arm's tail must not be worse than the blocking
// arm's (the precise contrast lives in cmd/abtest -async and
// EXPERIMENTS.md; this is the correctness gate).
func TestReplayServingABPairedArms(t *testing.T) {
	tr, err := Synthesize("retry-storm", 99, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayServingAB(context.Background(), tr, ServingABConfig{
		Dilate:         0.05,
		Workers:        2,
		OffloadLatency: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != len(tr.Events) {
		t.Errorf("Events = %d, want %d", res.Events, len(tr.Events))
	}
	for _, arm := range []struct {
		name string
		a    ABArm
	}{{"sync", res.Sync}, {"async", res.Async}} {
		if arm.a.Stats.Issued != len(tr.Events) {
			t.Errorf("%s arm issued %d of %d events", arm.name, arm.a.Stats.Issued, len(tr.Events))
		}
		if arm.a.Stats.Errors != 0 {
			t.Errorf("%s arm saw %d errors", arm.name, arm.a.Stats.Errors)
		}
		if got := arm.a.Latency.Count; got != uint64(len(tr.Events)) {
			t.Errorf("%s arm recorded %d latencies, want %d", arm.name, got, len(tr.Events))
		}
	}
	// The storm stacks >> 2 requests in flight while each offload holds a
	// sync worker for 2ms: blocking serializes offloads W at a time, so
	// its p99 must exceed the async arm's. Generous 1.2x slack keeps CI
	// machines honest without flaking.
	syncP99 := res.Sync.Latency.Quantile(0.99)
	asyncP99 := res.Async.Latency.Quantile(0.99)
	if asyncP99 > syncP99*1.2 {
		t.Errorf("async p99 %.0fns worse than sync p99 %.0fns under a retry storm", asyncP99, syncP99)
	}
}
