package record

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
)

// Scenario synthesis: the checked-in testdata/scenarios traces are
// generated here, deterministically from a seed, so the golden replay
// aggregates are reproducible and the scenarios carry recognizable
// shapes from production incident reviews:
//
//   - steady: stationary Poisson traffic across three services — the
//     baseline every A/B starts from.
//   - diurnal-burst: a compressed diurnal cycle (sinusoidal rate) with a
//     short 4x burst at the peak, the shape capacity planning worries
//     about.
//   - retry-storm: steady traffic where a mid-trace failure window turns
//     responses into errors and each error spawns tightly-spaced retries
//     — the classic metastable amplification shape.

// Scenarios lists the named scenarios Synthesize accepts, in the order
// documentation and CLI help present them.
var Scenarios = []string{"steady", "diurnal-burst", "retry-storm"}

// synthServices are the service names synthetic traces intern, drawn
// from the paper's service taxonomy (Table 1 tiers).
var synthServices = []string{"cache1", "feed1", "web1"}

// Synthesize generates the named scenario deterministically from seed.
// The returned trace is canonical, so re-synthesizing with the same
// arguments yields byte-identical encodings.
func Synthesize(scenario string, seed uint64, events int) (*Trace, error) {
	if events <= 0 {
		events = 4096
	}
	switch scenario {
	case "steady":
		return synthSteady(seed, events), nil
	case "diurnal-burst":
		return synthDiurnal(seed, events), nil
	case "retry-storm":
		return synthRetryStorm(seed, events), nil
	}
	return nil, fmt.Errorf("record: unknown scenario %q (have %v)", scenario, Scenarios)
}

// synthEvent draws the non-temporal fields: a service, a payload in the
// 64B–16KiB range the paper's offload CDFs cover, and a granularity at
// or below the payload.
func synthEvent(r *dist.Rand, arrival int64, outcome Outcome) Event {
	svc := uint32(r.Intn(len(synthServices)))
	payload := uint64(64) << r.Intn(9) // 64B .. 16KiB, log-uniform
	payload += r.Uint64n(payload)      // jitter within the octave
	gran := payload / (1 << r.Intn(4)) // offload granularity <= payload
	return Event{
		ArrivalNanos: arrival,
		Service:      svc,
		PayloadBytes: payload,
		Granularity:  gran,
		Outcome:      outcome,
	}
}

func finish(t *Trace) *Trace {
	t.Services = append([]string(nil), synthServices...)
	t.Canonicalize()
	return t
}

// synthSteady draws stationary Poisson arrivals at ~50k req/s.
func synthSteady(seed uint64, events int) *Trace {
	r := dist.NewRand(seed)
	const meanGapNanos = 20_000 // 50k req/s
	t := &Trace{}
	arrival := int64(0)
	for i := 0; i < events; i++ {
		arrival += int64(r.ExpFloat64() * meanGapNanos)
		t.Events = append(t.Events, synthEvent(r, arrival, OutcomeOK))
	}
	return finish(t)
}

// synthDiurnal modulates the arrival rate sinusoidally over the trace
// (one compressed "day"), with a 4x burst in the middle fifth.
func synthDiurnal(seed uint64, events int) *Trace {
	r := dist.NewRand(seed)
	const baseGapNanos = 25_000
	t := &Trace{}
	arrival := int64(0)
	for i := 0; i < events; i++ {
		phase := float64(i) / float64(events)
		// Rate swings 0.5x..1.5x over the cycle; the burst window runs
		// 4x on top of it.
		rate := 1 + 0.5*math.Sin(2*math.Pi*phase)
		if phase > 0.4 && phase < 0.6 {
			rate *= 4
		}
		arrival += int64(r.ExpFloat64() * baseGapNanos / rate)
		t.Events = append(t.Events, synthEvent(r, arrival, OutcomeOK))
	}
	return finish(t)
}

// synthRetryStorm runs steady traffic, fails the middle third, and has
// every failure spawn 1–3 retries a few hundred microseconds later —
// roughly tripling the offered load exactly when the system is sickest.
func synthRetryStorm(seed uint64, events int) *Trace {
	r := dist.NewRand(seed)
	const meanGapNanos = 30_000
	t := &Trace{}
	arrival := int64(0)
	for i := 0; i < events; i++ {
		arrival += int64(r.ExpFloat64() * meanGapNanos)
		inStorm := i > events/3 && i < 2*events/3
		if !inStorm {
			t.Events = append(t.Events, synthEvent(r, arrival, OutcomeOK))
			continue
		}
		failed := synthEvent(r, arrival, OutcomeError)
		t.Events = append(t.Events, failed)
		for retry := 1 + r.Intn(3); retry > 0; retry-- {
			gap := int64(100_000 + r.Uint64n(400_000)) // 100–500us backoff
			re := failed
			re.ArrivalNanos += gap * int64(retry)
			re.Outcome = OutcomeRetry
			t.Events = append(t.Events, re)
		}
	}
	// Retries land out of order relative to later primaries; restore
	// arrival order before canonicalizing (Canonicalize sorts too, but
	// being explicit documents why the stream is momentarily unsorted).
	sort.Slice(t.Events, func(a, b int) bool { return t.Events[a].ArrivalNanos < t.Events[b].ArrivalNanos })
	return finish(t)
}
