package record

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateSeedCorpus (re)generates the checked-in seed corpus for
// FuzzDecodeTrace when RECORD_GEN_CORPUS=1 is set:
//
//	RECORD_GEN_CORPUS=1 go test ./internal/record -run TestGenerateSeedCorpus
//
// Keeping the generator next to the corpus means a format change
// regenerates the seeds instead of silently orphaning them. Without the
// env var the test verifies the corpus is present and well-formed.
func TestGenerateSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeTrace")
	mustEncode := func(tr *Trace) []byte {
		data, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	mustSynth := func(sc string) []byte {
		tr, err := Synthesize(sc, 42, 32)
		if err != nil {
			t.Fatal(err)
		}
		return mustEncode(tr)
	}
	seeds := map[string][]byte{
		"empty_trace":   mustEncode(&Trace{}),
		"single_event":  mustEncode(&Trace{Services: []string{"cache1"}, Events: []Event{{PayloadBytes: 64, Granularity: 64}}}),
		"multi_service": mustEncode(testTrace()),
		"steady_small":  mustSynth("steady"),
		"diurnal_small": mustSynth("diurnal-burst"),
		"storm_small":   mustSynth("retry-storm"),
		"bad_magic":     []byte("NOPE\x01"),
		"bare_header":   []byte(magic + "\x01"),
		"huge_services": append([]byte(magic+"\x01"), binary.AppendUvarint(nil, 1<<40)...),
		"junk_text":     []byte("not a trace at all"),
	}
	if os.Getenv("RECORD_GEN_CORPUS") != "1" {
		for name := range seeds {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("seed corpus missing (regenerate with RECORD_GEN_CORPUS=1): %v", err)
			}
			if len(data) == 0 || string(data[:15]) != "go test fuzz v1" {
				t.Errorf("seed %s is not in go fuzz corpus format", name)
			}
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
