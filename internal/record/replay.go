package record

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Replay drives a recorded trace back through the system, two ways:
//
//   - ReplaySim feeds each service's recorded arrivals to the
//     discrete-event simulator as an explicit schedule (sim's
//     Arrivals.Times), so the model is evaluated on the exact offered
//     stream a production run saw instead of a fitted Poisson process.
//     Replay is fully deterministic: the same trace yields
//     byte-identical aggregates on every run.
//
//   - ReplayRPC issues the trace open-loop against a live RPC client at
//     the recorded timestamps (optionally time-dilated), preserving the
//     arrival process — including the bursts that closed-loop load
//     generators destroy — while measuring real client-side latency.

// SimReplayConfig shapes the simulated server each recorded service is
// replayed against.
type SimReplayConfig struct {
	// Cores and Threads shape the per-service server (defaults 4/4).
	Cores   int
	Threads int
	// HostHz converts recorded nanoseconds to cycles (default 1e9).
	HostHz float64
	// ContextSwitch is sim's o1 cost in cycles.
	ContextSwitch float64
	// Accel, when non-nil, attaches an accelerator (the A/B lever).
	Accel *sim.Accel
	// NonKernelCycles is per-request host work beyond the offloadable
	// kernel (default 2000).
	NonKernelCycles float64
	// Kernel converts each event's recorded granularity into host
	// cycles (default core.LinearKernel(5.6), the paper's α shape).
	Kernel core.Kernel
	// Dilate stretches (>1) or compresses (<1) recorded inter-arrival
	// gaps; 0 means 1 (replay at recorded speed).
	Dilate float64
}

func (c *SimReplayConfig) setDefaults() {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Threads == 0 {
		c.Threads = c.Cores
	}
	if !(c.HostHz > 0) { // zero/negative/NaN all mean "unset"
		c.HostHz = 1e9
	}
	if !(c.NonKernelCycles > 0) {
		c.NonKernelCycles = 2000
	}
	if !(c.Kernel.Cb > 0) {
		c.Kernel = core.LinearKernel(5.6)
	}
	if !(c.Dilate > 0) {
		c.Dilate = 1
	}
}

// ServiceReplay is one service's replayed result.
type ServiceReplay struct {
	Service  string
	Requests int
	Result   sim.Result
}

// SimReplayResult is a full trace replay: per-service results in
// service-table (canonical) order plus their merged aggregate.
type SimReplayResult struct {
	PerService []ServiceReplay
	Aggregate  sim.Result
}

// traceWorkload replays recorded events as sim requests: each request
// performs the service's fixed non-kernel work plus one kernel
// invocation at the event's recorded offload granularity.
type traceWorkload struct {
	events    []Event
	nonKernel float64
	kernel    core.Kernel
}

// Request implements sim.Workload.
func (w *traceWorkload) Request(i int) sim.Request {
	e := &w.events[i%len(w.events)]
	return sim.Request{
		NonKernelCycles: w.nonKernel,
		Kernels: []sim.Invocation{{
			Bytes:      e.Granularity,
			HostCycles: w.kernel.HostCycles(e.Granularity),
		}},
	}
}

// ReplaySim replays the trace through the simulator, one simulated
// server per recorded service, and merges the results in canonical
// service order — so the aggregate is deterministic and two configs
// replayed over the same trace form a paired comparison on
// byte-identical arrivals.
func ReplaySim(t *Trace, cfg SimReplayConfig) (*SimReplayResult, error) {
	if t == nil || len(t.Events) == 0 {
		return nil, fmt.Errorf("record: nothing to replay")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dilate < 0 {
		return nil, fmt.Errorf("record: negative time dilation %v", cfg.Dilate)
	}
	cfg.setDefaults()

	out := &SimReplayResult{}
	cyclesPerNano := cfg.HostHz * cfg.Dilate / 1e9
	var results []sim.Result
	for svc, events := range t.ServiceEvents() {
		if len(events) == 0 {
			continue
		}
		times := make([]float64, len(events))
		for i, e := range events {
			times[i] = float64(e.ArrivalNanos) * cyclesPerNano
		}
		wl := &traceWorkload{events: events, nonKernel: cfg.NonKernelCycles, kernel: cfg.Kernel}
		s, err := sim.New(sim.Config{
			Cores:         cfg.Cores,
			Threads:       cfg.Threads,
			ContextSwitch: cfg.ContextSwitch,
			HostHz:        cfg.HostHz,
			Accel:         cfg.Accel,
			Requests:      len(events),
			Arrivals:      &sim.Arrivals{Times: times},
		}, wl)
		if err != nil {
			return nil, fmt.Errorf("record: replay %s: %w", t.Services[svc], err)
		}
		res, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("record: replay %s: %w", t.Services[svc], err)
		}
		out.PerService = append(out.PerService, ServiceReplay{
			Service:  t.Services[svc],
			Requests: len(events),
			Result:   res,
		})
		results = append(results, res)
	}
	agg, err := sim.MergeResults(results)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	out.Aggregate = agg
	return out, nil
}

// CallFunc is the client shape ReplayRPC drives — both
// (*rpc.Client).CallContext and (*rpc.Batcher).CallContext satisfy it,
// which is what makes the batched-vs-unbatched A/B a one-line swap.
type CallFunc func(context.Context, rpc.Message) (rpc.Message, error)

// SerializeCalls adapts a sequential-only client (one rpc.Client on
// one connection) to the open-loop replayer's concurrent issue:
// concurrent arrivals queue on a lock, giving the unbatched baseline
// its real-world shape — head-of-line blocking on a single connection.
// The Batcher needs no such adapter; coalescing concurrent callers is
// its entire purpose, which is the contrast the A/B measures.
func SerializeCalls(call CallFunc) CallFunc {
	var mu sync.Mutex
	return func(ctx context.Context, m rpc.Message) (rpc.Message, error) {
		mu.Lock()
		defer mu.Unlock()
		return call(ctx, m)
	}
}

// RPCReplayConfig shapes an open-loop replay against a live client.
type RPCReplayConfig struct {
	// Dilate stretches (>1) or compresses (<1) the recorded gaps; 0
	// means 1. Replays against real servers usually dilate >= 1 so the
	// serving stack, not the load generator, is the bottleneck.
	Dilate float64
	// MaxInFlight bounds concurrent calls (default 256). When the bound
	// is hit the replayer blocks — arrivals fall behind schedule rather
	// than overwhelming the client with unbounded goroutines.
	MaxInFlight int
	// MethodSuffix names the replayed calls: service + MethodSuffix
	// (default ".replay").
	MethodSuffix string
	// Latency, when non-nil, records per-call latency in nanoseconds.
	Latency *telemetry.Histogram
}

// RPCReplayStats summarizes one open-loop replay.
type RPCReplayStats struct {
	Issued   int
	Errors   int
	Duration time.Duration
	// MaxLagNanos is the worst observed scheduling lag: how far behind
	// the dilated schedule a request was actually issued. Large lag
	// means the replayer (or the in-flight bound) — not the recorded
	// process — shaped the arrivals.
	MaxLagNanos int64
}

// ReplayRPC issues the trace's events against call at their recorded
// (dilated) timestamps. Calls run open-loop: a slow response delays
// nothing behind it, up to MaxInFlight concurrency. Context
// cancellation stops the replay between issues.
func ReplayRPC(ctx context.Context, t *Trace, call CallFunc, cfg RPCReplayConfig) (RPCReplayStats, error) {
	var stats RPCReplayStats
	if t == nil || len(t.Events) == 0 {
		return stats, fmt.Errorf("record: nothing to replay")
	}
	if err := t.Validate(); err != nil {
		return stats, err
	}
	if call == nil {
		return stats, fmt.Errorf("record: nil call function")
	}
	if cfg.Dilate < 0 {
		return stats, fmt.Errorf("record: negative time dilation %v", cfg.Dilate)
	}
	if !(cfg.Dilate > 0) {
		cfg.Dilate = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MethodSuffix == "" {
		cfg.MethodSuffix = ".replay"
	}

	// One payload buffer per distinct size would still allocate per
	// call inside the stack; sharing one zero-filled backing array and
	// slicing it per event keeps the replayer itself quiet.
	var maxPayload uint64
	for i := range t.Events {
		if t.Events[i].PayloadBytes > maxPayload {
			maxPayload = t.Events[i].PayloadBytes
		}
	}
	const payloadCap = 1 << 20
	if maxPayload > payloadCap {
		maxPayload = payloadCap
	}
	backing := make([]byte, maxPayload)

	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0

	dueTimes := t.DueTimes(cfg.Dilate)
	start := time.Now()
	for i := range t.Events {
		e := &t.Events[i]
		due := dueTimes[i]
		if lag := time.Since(start) - due; lag > 0 && int64(lag) > stats.MaxLagNanos {
			stats.MaxLagNanos = int64(lag)
		} else if lag < 0 {
			timer := time.NewTimer(-lag)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				wg.Wait()
				stats.Errors = errs
				stats.Duration = time.Since(start)
				return stats, ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			stats.Errors = errs
			stats.Duration = time.Since(start)
			return stats, ctx.Err()
		}
		size := e.PayloadBytes
		if size > maxPayload {
			size = maxPayload
		}
		msg := rpc.Message{
			Method:  t.Services[e.Service] + cfg.MethodSuffix,
			Payload: backing[:size],
		}
		stats.Issued++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			callStart := time.Now()
			_, err := call(ctx, msg)
			if cfg.Latency != nil {
				cfg.Latency.Record(float64(time.Since(callStart)))
			}
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.Errors = errs
	stats.Duration = time.Since(start)
	return stats, nil
}
