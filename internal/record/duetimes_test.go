package record

import (
	"testing"
	"time"
)

// TestDueTimes pins the shared arrival schedule both ReplayRPC and the
// topology load generator consume: one entry per event, arrival offsets
// scaled by the dilation factor, with non-positive or NaN dilations
// meaning recorded speed.
func TestDueTimes(t *testing.T) {
	tr := &Trace{
		Services: []string{"a"},
		Events: []Event{
			{ArrivalNanos: 0},
			{ArrivalNanos: 1_000_000},
			{ArrivalNanos: 3_000_000},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	recorded := []time.Duration{0, time.Millisecond, 3 * time.Millisecond}
	for _, dilate := range []float64{1, 0, -2} {
		got := tr.DueTimes(dilate)
		if len(got) != len(recorded) {
			t.Fatalf("dilate %v: %d entries, want %d", dilate, len(got), len(recorded))
		}
		for i := range got {
			if got[i] != recorded[i] {
				t.Fatalf("dilate %v: due[%d] = %v, want %v", dilate, i, got[i], recorded[i])
			}
		}
	}

	half := tr.DueTimes(0.5)
	want := []time.Duration{0, 500 * time.Microsecond, 1500 * time.Microsecond}
	for i := range half {
		if half[i] != want[i] {
			t.Fatalf("dilate 0.5: due[%d] = %v, want %v", i, half[i], want[i])
		}
	}

	if got := (&Trace{}).DueTimes(1); len(got) != 0 {
		t.Fatalf("empty trace due times = %v, want none", got)
	}
}
