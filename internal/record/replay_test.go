package record

import (
	"context"
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestReplaySimValidation(t *testing.T) {
	if _, err := ReplaySim(nil, SimReplayConfig{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := ReplaySim(&Trace{Services: []string{"a"}}, SimReplayConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
	tr, err := Synthesize("steady", 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySim(tr, SimReplayConfig{Dilate: -1}); err == nil {
		t.Error("negative dilation accepted")
	}
	bad := &Trace{Services: []string{"a"}, Events: []Event{{Service: 9}}}
	if _, err := ReplaySim(bad, SimReplayConfig{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

// The tentpole determinism claim: the same trace replayed twice through
// the simulator yields byte-identical aggregates.
func TestReplaySimDeterministic(t *testing.T) {
	for _, sc := range Scenarios {
		tr, err := Synthesize(sc, 11, 800)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ReplaySim(tr, SimReplayConfig{})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		b, err := ReplaySim(tr, SimReplayConfig{})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: replaying the same trace twice diverged", sc)
		}
		if a.Aggregate.Completed != len(tr.Events) {
			t.Errorf("%s: completed %d of %d recorded events", sc, a.Aggregate.Completed, len(tr.Events))
		}
		if len(a.PerService) != len(tr.Services) {
			t.Errorf("%s: %d per-service results for %d services", sc, len(a.PerService), len(tr.Services))
		}
		for i := 1; i < len(a.PerService); i++ {
			if a.PerService[i-1].Service >= a.PerService[i].Service {
				t.Errorf("%s: per-service results not in canonical order", sc)
			}
		}
	}
}

// An encode/decode round trip through the on-disk format preserves the
// replay outcome exactly.
func TestReplaySimSurvivesSerialization(t *testing.T) {
	tr, err := Synthesize("diurnal-burst", 5, 600)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ReplaySim(tr, SimReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	roundTripped, err := ReplaySim(decoded, SimReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, roundTripped) {
		t.Error("serialization changed the replay result")
	}
}

// Dilation stretches the offered stream: replaying at 10x dilation cuts
// the offered rate, so queueing — and with it mean latency — drops, on
// a trace dense enough to queue at recorded speed.
func TestReplaySimDilation(t *testing.T) {
	tr, err := Synthesize("retry-storm", 9, 1200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimReplayConfig{Cores: 1, Threads: 1}
	recorded, err := ReplaySim(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := cfg
	slowCfg.Dilate = 10
	dilated, err := ReplaySim(tr, slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if dilated.Aggregate.MeanLatency >= recorded.Aggregate.MeanLatency {
		t.Errorf("10x dilation did not reduce queueing: mean latency %v -> %v",
			recorded.Aggregate.MeanLatency, dilated.Aggregate.MeanLatency)
	}
}

// Acceleration changes replay results the way the paper predicts: an
// accelerator on the same recorded arrivals completes the run no slower.
func TestReplaySimAcceleratedAB(t *testing.T) {
	tr, err := Synthesize("steady", 21, 800)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReplaySim(tr, SimReplayConfig{Cores: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := ReplaySim(tr, SimReplayConfig{
		Cores: 1, Threads: 1,
		Accel: &sim.Accel{A: 8, O0: 200, L: 500, Servers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if accel.Aggregate.Offloads == 0 {
		t.Fatal("accelerated replay performed no offloads")
	}
	if accel.Aggregate.ElapsedCycles > base.Aggregate.ElapsedCycles {
		t.Errorf("accelerated replay slower: %v > %v cycles",
			accel.Aggregate.ElapsedCycles, base.Aggregate.ElapsedCycles)
	}
}

// replayServer serves an echo handler over net.Pipe and returns the
// connected client.
func replayServer(t *testing.T, handler rpc.Handler) *rpc.Client {
	t.Helper()
	srv, err := rpc.NewServer(handler, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestReplayRPCValidation(t *testing.T) {
	ctx := context.Background()
	call := func(context.Context, rpc.Message) (rpc.Message, error) { return rpc.Message{}, nil }
	if _, err := ReplayRPC(ctx, &Trace{}, call, RPCReplayConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
	tr, err := Synthesize("steady", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayRPC(ctx, tr, nil, RPCReplayConfig{}); err == nil {
		t.Error("nil call accepted")
	}
	if _, err := ReplayRPC(ctx, tr, call, RPCReplayConfig{Dilate: -2}); err == nil {
		t.Error("negative dilation accepted")
	}
}

// An open-loop replay against a live echo server issues every recorded
// event with its service name and payload size, and reports latency.
func TestReplayRPCIssuesRecordedStream(t *testing.T) {
	tr, err := Synthesize("steady", 13, 200)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	var badMethods atomic.Int64
	client := replayServer(t, func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		calls.Add(1)
		if len(req.Method) < len(".replay") {
			badMethods.Add(1)
		}
		return rpc.Message{Method: req.Method}, nil
	})
	lat := telemetry.NewHistogram("replay_lat", "")
	// Compress hard: the trace spans ~4ms of recorded time; no reason
	// for the test to sleep through it at full length.
	stats, err := ReplayRPC(context.Background(), tr, SerializeCalls(client.CallContext), RPCReplayConfig{
		Dilate:  0.1,
		Latency: lat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != len(tr.Events) {
		t.Errorf("issued %d of %d events", stats.Issued, len(tr.Events))
	}
	if got := calls.Load(); got != int64(len(tr.Events)) {
		t.Errorf("server saw %d calls, want %d", got, len(tr.Events))
	}
	if badMethods.Load() != 0 {
		t.Errorf("%d calls had malformed methods", badMethods.Load())
	}
	if stats.Errors != 0 {
		t.Errorf("%d errors from the echo server", stats.Errors)
	}
	if snap := lat.Snapshot(); snap.Count != uint64(len(tr.Events)) {
		t.Errorf("latency histogram recorded %d of %d calls", snap.Count, len(tr.Events))
	}
	if stats.Duration <= 0 {
		t.Error("zero replay duration")
	}
}

func TestReplayRPCCountsErrors(t *testing.T) {
	tr, err := Synthesize("steady", 17, 50)
	if err != nil {
		t.Fatal(err)
	}
	client := replayServer(t, func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{}, errors.New("always fails")
	})
	stats, err := ReplayRPC(context.Background(), tr, SerializeCalls(client.CallContext), RPCReplayConfig{Dilate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != stats.Issued || stats.Errors == 0 {
		t.Errorf("errors = %d, issued = %d; want all failed", stats.Errors, stats.Issued)
	}
}

// Cancellation stops the replay between issues instead of draining the
// whole trace.
func TestReplayRPCCancellation(t *testing.T) {
	// A long trace with real gaps so cancellation lands mid-replay.
	tr := &Trace{Services: []string{"slow"}}
	for i := 0; i < 1000; i++ {
		tr.Events = append(tr.Events, Event{ArrivalNanos: int64(i) * int64(10*time.Millisecond), PayloadBytes: 8})
	}
	client := replayServer(t, func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{Method: req.Method}, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stats, err := ReplayRPC(ctx, tr, SerializeCalls(client.CallContext), RPCReplayConfig{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if stats.Issued == 0 || stats.Issued >= len(tr.Events) {
		t.Errorf("issued %d of %d; want a strict mid-replay prefix", stats.Issued, len(tr.Events))
	}
}

// The batched and unbatched clients are interchangeable CallFuncs — the
// type-level guarantee the A/B harness rests on.
func TestReplayRPCBatcherCompatible(t *testing.T) {
	tr, err := Synthesize("steady", 29, 100)
	if err != nil {
		t.Fatal(err)
	}
	client := replayServer(t, func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{Method: req.Method}, nil
	})
	batcher, err := rpc.NewBatcher(client, rpc.BatcherConfig{MaxBatch: 8, Linger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer batcher.Close()
	stats, err := ReplayRPC(context.Background(), tr, batcher.CallContext, RPCReplayConfig{Dilate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != len(tr.Events) || stats.Errors != 0 {
		t.Errorf("batched replay: %+v", stats)
	}
}
