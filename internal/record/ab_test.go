package record

import (
	"context"
	"testing"
)

func TestReplayABValidation(t *testing.T) {
	if _, err := ReplayAB(context.Background(), &Trace{}, ABConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
}

// Both arms of the paired replay issue every recorded event — the same
// arrivals, payloads, and timestamps — and neither arm errors; the only
// difference between them is the client stack.
func TestReplayABPairedArms(t *testing.T) {
	tr, err := Synthesize("retry-storm", 99, 240)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayAB(context.Background(), tr, ABConfig{Dilate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != len(tr.Events) {
		t.Errorf("Events = %d, want %d", res.Events, len(tr.Events))
	}
	for _, arm := range []struct {
		name string
		a    ABArm
	}{{"unbatched", res.Unbatched}, {"batched", res.Batched}} {
		if arm.a.Stats.Issued != len(tr.Events) {
			t.Errorf("%s arm issued %d of %d events", arm.name, arm.a.Stats.Issued, len(tr.Events))
		}
		if arm.a.Stats.Errors != 0 {
			t.Errorf("%s arm saw %d errors", arm.name, arm.a.Stats.Errors)
		}
		if got := arm.a.Latency.Count; got != uint64(len(tr.Events)) {
			t.Errorf("%s arm recorded %d latencies, want %d", arm.name, got, len(tr.Events))
		}
		if arm.a.Stats.Duration <= 0 {
			t.Errorf("%s arm reports non-positive duration", arm.name)
		}
	}
}
