package record

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestTriggerConfigValidation(t *testing.T) {
	rec := NewRecorder(16)
	h := telemetry.NewHistogram("lat", "")
	bad := []TriggerConfig{
		{},
		{Recorder: rec},                   // no dir
		{Recorder: rec, Dir: t.TempDir()}, // no armed signal
		{Dir: t.TempDir(), Latency: h, P99Threshold: 1}, // no recorder
		{Recorder: rec, Dir: t.TempDir(), Latency: h},   // histogram but no threshold
	}
	for i, cfg := range bad {
		if _, err := StartTrigger(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// The latency signal fires on the rolling window's p99, not the
// cumulative distribution: a long healthy history must not mask a
// sudden regression.
func TestTriggerFiresOnRollingP99(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record("cache1", 64, 64, OutcomeOK)
	h := telemetry.NewHistogram("lat", "")
	dir := t.TempDir()
	trg, err := StartTrigger(TriggerConfig{
		Recorder: rec, Dir: dir,
		Latency: h, P99Threshold: 1e6,
		Interval: time.Hour, // polls driven manually
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trg.Stop()

	// A long fast history.
	for i := 0; i < 5000; i++ {
		h.Record(100)
	}
	if p := trg.Poll(); p != "" {
		t.Fatalf("first poll (baseline) fired: %s", p)
	}
	if p := trg.Poll(); p != "" {
		t.Fatalf("healthy window fired: %s", p)
	}
	// A slow window — far too few samples to move the cumulative p99.
	for i := 0; i < 50; i++ {
		h.Record(5e6)
	}
	p := trg.Poll()
	if p == "" {
		t.Fatal("slow window did not fire")
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("dump missing: %v", err)
	}
	got, err := ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 {
		t.Errorf("dump has %d events", len(got.Events))
	}
	if st := rec.State(); st.LastDumpPath != p {
		t.Errorf("recorder state last dump = %q, want %q", st.LastDumpPath, p)
	}
}

// Tiny windows are noise: below MinWindowCount the latency signal
// stays quiet no matter how slow the samples are.
func TestTriggerIgnoresTinyWindows(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record("cache1", 1, 1, OutcomeOK)
	h := telemetry.NewHistogram("lat", "")
	trg, err := StartTrigger(TriggerConfig{
		Recorder: rec, Dir: t.TempDir(),
		Latency: h, P99Threshold: 1, MinWindowCount: 10,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trg.Stop()
	trg.Poll()
	h.Record(1e9)
	if p := trg.Poll(); p != "" {
		t.Fatalf("single-sample window fired: %s", p)
	}
}

// The error signal fires on per-interval growth, respects the cooldown,
// and dump filenames increment.
func TestTriggerErrorSignalAndCooldown(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record("web1", 1, 1, OutcomeError)
	errs := &telemetry.Counter{}
	trg, err := StartTrigger(TriggerConfig{
		Recorder: rec, Dir: t.TempDir(),
		Errors: errs, ErrorThreshold: 10,
		Interval: time.Hour, CooldownPolls: 2, MaxDumps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trg.Stop()

	trg.Poll() // baseline
	errs.Add(5)
	if p := trg.Poll(); p != "" {
		t.Fatalf("+5 errors fired below threshold: %s", p)
	}
	errs.Add(10)
	first := trg.Poll()
	if first == "" {
		t.Fatal("+10 errors did not fire")
	}
	if filepath.Base(first) != "anomaly-000.trace" {
		t.Errorf("first dump named %s", filepath.Base(first))
	}
	// Cooldown: the next two anomalous polls stay quiet.
	for i := 0; i < 2; i++ {
		errs.Add(100)
		if p := trg.Poll(); p != "" {
			t.Fatalf("poll during cooldown fired: %s", p)
		}
	}
	errs.Add(100)
	second := trg.Poll()
	if second == "" {
		t.Fatal("post-cooldown anomaly did not fire")
	}
	if filepath.Base(second) != "anomaly-001.trace" {
		t.Errorf("second dump named %s", filepath.Base(second))
	}
	// MaxDumps reached: no further dumps even past cooldown.
	for i := 0; i < 5; i++ {
		errs.Add(100)
		if p := trg.Poll(); p != "" {
			t.Fatalf("dump beyond MaxDumps: %s", p)
		}
	}
	if d := trg.Dumps(); len(d) != 2 {
		t.Errorf("Dumps() = %v", d)
	}
	if trg.Err() != nil {
		t.Errorf("unexpected trigger error: %v", trg.Err())
	}
}

// The background loop polls on its own and Stop is idempotent (and
// nil-safe).
func TestTriggerLoopAndStop(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record("web1", 1, 1, OutcomeOK)
	errs := &telemetry.Counter{}
	trg, err := StartTrigger(TriggerConfig{
		Recorder: rec, Dir: t.TempDir(),
		Errors: errs, ErrorThreshold: 1,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs.Add(100)
	deadline := time.Now().Add(5 * time.Second)
	for len(trg.Dumps()) == 0 && time.Now().Before(deadline) {
		errs.Add(100)
		time.Sleep(5 * time.Millisecond)
	}
	if len(trg.Dumps()) == 0 {
		t.Fatal("background loop never fired")
	}
	trg.Stop()
	trg.Stop()
	var nilTrg *Trigger
	nilTrg.Stop()
}

// A firing trigger with a Spans source also dumps the slowest request's
// trace tree as a Chrome trace next to the ring.
func TestTriggerDumpsSlowestTraceTree(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record("web1", 1, 1, OutcomeError)
	errs := &telemetry.Counter{}
	dir := t.TempDir()
	base := time.Unix(0, 0)
	spans := []telemetry.SpanData{
		{TraceID: 1, SpanID: 1, Name: "topo.request", Process: "client", Start: base, Duration: 100},
		{TraceID: 2, SpanID: 2, Name: "topo.request", Process: "client", Start: base, Duration: 900},
		{TraceID: 2, SpanID: 3, ParentID: 2, Name: "handler", Process: "leaf", Category: telemetry.CatWork, Start: base.Add(100), Duration: 700},
	}
	trg, err := StartTrigger(TriggerConfig{
		Recorder: rec, Dir: dir,
		Errors: errs, ErrorThreshold: 1,
		Spans:    func() []telemetry.SpanData { return spans },
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trg.Stop()

	trg.Poll() // baseline
	errs.Add(5)
	if p := trg.Poll(); p == "" {
		t.Fatal("error burst did not fire")
	}
	dumps := trg.SpanDumps()
	if len(dumps) != 1 || filepath.Base(dumps[0]) != "anomaly-000.spans.json" {
		t.Fatalf("SpanDumps() = %v", dumps)
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	// Only the slowest trace (ID 2) is dumped, spans intact.
	if !strings.Contains(string(data), `"handler"`) {
		t.Errorf("span dump missing slowest trace's spans:\n%s", data)
	}
	if strings.Count(string(data), "topo.request") != 1 {
		t.Errorf("span dump should hold exactly the slowest request:\n%s", data)
	}
	if trg.Err() != nil {
		t.Errorf("trigger error: %v", trg.Err())
	}
}
