package record

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// Binary trace format ("ACRT", version 1):
//
//	magic   [4]byte  "ACRT"
//	version byte     1
//	uvarint          service count
//	  per service:   uvarint name length, then the name bytes
//	uvarint          event count
//	  per event:     uvarint arrival delta (nanoseconds since the
//	                 previous event; the first is absolute)
//	                 uvarint service index
//	                 uvarint payload bytes
//	                 uvarint granularity g
//	                 byte    outcome
//
// Delta-encoded varint arrivals make the common case — microsecond
// inter-arrivals — two to three bytes per timestamp, so a trace costs
// roughly 6–10 bytes per request. The decoder treats its input as
// untrusted: every count is bounded by what the remaining bytes could
// possibly hold, and indices, outcomes, and timestamp sums are checked
// before use.

const (
	magic   = "ACRT"
	version = 1

	// maxServices bounds the service table; real deployments intern a
	// handful of names, so anything larger is a corrupt or hostile file.
	maxServices = 1 << 16
	// maxServiceName bounds one interned name's length.
	maxServiceName = 256

	// headerOverhead approximates the fixed encoding cost (magic,
	// version, two counts) for State's size estimate.
	headerOverhead = 4 + 1 + 2*binary.MaxVarintLen64
	// approxEventBytes is the per-event cost State assumes: short deltas
	// and indices dominate real traces.
	approxEventBytes = 10
	// minEventBytes is the smallest possible encoded event (four
	// single-byte varints plus the outcome byte); it bounds how many
	// events a decoder may pre-allocate for a given input length.
	minEventBytes = 5
)

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Encode serializes the trace. The trace must Validate; events need not
// be canonical, only sorted by arrival (which Validate enforces), so
// Encode(Decode(data)) succeeds for any accepted input.
func (t *Trace) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	size := headerOverhead
	for _, s := range t.Services {
		size += uvarintLen(uint64(len(s))) + len(s)
	}
	size += len(t.Events) * (4*binary.MaxVarintLen64 + 1) / 2 // guess; append grows if short
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.AppendUvarint(buf, uint64(len(t.Services)))
	for _, s := range t.Services {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Events)))
	prev := int64(0)
	for i := range t.Events {
		e := &t.Events[i]
		buf = binary.AppendUvarint(buf, uint64(e.ArrivalNanos-prev))
		prev = e.ArrivalNanos
		buf = binary.AppendUvarint(buf, uint64(e.Service))
		buf = binary.AppendUvarint(buf, e.PayloadBytes)
		buf = binary.AppendUvarint(buf, e.Granularity)
		buf = append(buf, byte(e.Outcome))
	}
	return buf, nil
}

// decodeState walks an untrusted byte slice.
type decodeState struct {
	data []byte
	off  int
}

func (d *decodeState) remaining() int { return len(d.data) - d.off }

func (d *decodeState) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("record: truncated or overlong varint reading %s at offset %d", what, d.off)
	}
	d.off += n
	return v, nil
}

func (d *decodeState) bytes(n int, what string) ([]byte, error) {
	if n < 0 || n > d.remaining() {
		return nil, fmt.Errorf("record: %s of %d bytes exceeds the %d remaining", what, n, d.remaining())
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Decode parses an encoded trace. The input is untrusted: counts are
// bounded by the input length, indices and outcomes are validated, and
// arrival sums are checked for overflow, so no input can cause a panic
// or an allocation disproportionate to its size.
func Decode(data []byte) (*Trace, error) {
	d := &decodeState{data: data}
	hdr, err := d.bytes(len(magic)+1, "header")
	if err != nil {
		return nil, err
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("record: bad magic %q", hdr[:len(magic)])
	}
	if hdr[len(magic)] != version {
		return nil, fmt.Errorf("record: unsupported trace version %d (want %d)", hdr[len(magic)], version)
	}

	nServices, err := d.uvarint("service count")
	if err != nil {
		return nil, err
	}
	if nServices > maxServices || nServices > uint64(d.remaining()) {
		return nil, fmt.Errorf("record: service count %d is implausible for a %d-byte input", nServices, len(data))
	}
	t := &Trace{Services: make([]string, 0, nServices)}
	seen := make(map[string]bool, nServices)
	for i := uint64(0); i < nServices; i++ {
		nameLen, err := d.uvarint("service name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > maxServiceName {
			return nil, fmt.Errorf("record: service %d name length %d outside [1, %d]", i, nameLen, maxServiceName)
		}
		name, err := d.bytes(int(nameLen), "service name")
		if err != nil {
			return nil, err
		}
		s := string(name)
		if seen[s] {
			return nil, fmt.Errorf("record: duplicate service name %q", s)
		}
		seen[s] = true
		t.Services = append(t.Services, s)
	}

	nEvents, err := d.uvarint("event count")
	if err != nil {
		return nil, err
	}
	if nEvents > uint64(d.remaining()/minEventBytes) {
		return nil, fmt.Errorf("record: event count %d exceeds what %d remaining bytes can hold", nEvents, d.remaining())
	}
	t.Events = make([]Event, 0, nEvents)
	arrival := int64(0)
	for i := uint64(0); i < nEvents; i++ {
		delta, err := d.uvarint("arrival delta")
		if err != nil {
			return nil, err
		}
		if delta > math.MaxInt64 || arrival > math.MaxInt64-int64(delta) {
			return nil, fmt.Errorf("record: event %d arrival overflows the nanosecond clock", i)
		}
		arrival += int64(delta)
		svc, err := d.uvarint("service index")
		if err != nil {
			return nil, err
		}
		if svc >= nServices {
			return nil, fmt.Errorf("record: event %d references service %d of %d", i, svc, nServices)
		}
		payload, err := d.uvarint("payload bytes")
		if err != nil {
			return nil, err
		}
		gran, err := d.uvarint("granularity")
		if err != nil {
			return nil, err
		}
		ob, err := d.bytes(1, "outcome")
		if err != nil {
			return nil, err
		}
		outcome := Outcome(ob[0])
		if !outcome.Valid() {
			return nil, fmt.Errorf("record: event %d has unknown outcome %d", i, ob[0])
		}
		t.Events = append(t.Events, Event{
			ArrivalNanos: arrival,
			Service:      uint32(svc),
			PayloadBytes: payload,
			Granularity:  gran,
			Outcome:      outcome,
		})
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("record: %d trailing bytes after the last event", d.remaining())
	}
	return t, nil
}

// WriteFile encodes the trace to path, returning the byte count written.
func (t *Trace) WriteFile(path string) (int, error) {
	data, err := t.Encode()
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("record: %w", err)
	}
	return len(data), nil
}

// ReadFile reads and decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	return Decode(data)
}
