package record

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Paired A/B replay over the real RPC stack: one recorded trace drives
// two client stacks against the same in-process echo server — an
// unbatched arm (one sequential connection, so concurrent requests queue
// head-of-line behind each other) and a batched arm (rpc.Batcher
// coalescing concurrent requests into envelope frames). Both arms replay
// the identical event list at the identical dilated timestamps with
// identical payload bytes, so any latency or duration difference is
// attributable to the client stack alone — the trace-replay equivalent
// of the paper's paired-experiment methodology (§6).

// ABConfig configures a batched-vs-unbatched paired replay.
type ABConfig struct {
	// Dilate stretches (>1) or compresses (<1) the recorded inter-arrival
	// gaps in both arms; 0 means 1 (real time).
	Dilate float64
	// MaxBatch bounds the batcher arm's coalescing (default 8).
	MaxBatch int
	// Linger is how long the batcher arm waits to fill a batch
	// (default 200µs).
	Linger time.Duration
	// MaxInFlight bounds concurrently outstanding requests per arm
	// (default: RPCReplayConfig's).
	MaxInFlight int
}

// ABArm is one side's measurement.
type ABArm struct {
	Stats   RPCReplayStats
	Latency telemetry.HistogramSnapshot // per-call wall latency, nanoseconds
	// Spans holds the arm's server-side span trees when the replay ran
	// with tracing (ServingABConfig.Trace); nil otherwise.
	Spans []telemetry.SpanData
}

// ABResult pairs the two arms of one replay.
type ABResult struct {
	Events             int
	Unbatched, Batched ABArm
}

// ReplayAB replays tr through both client stacks sequentially (unbatched
// first) and returns the paired measurements. The arms never run
// concurrently, so they do not contend for CPU with each other.
func ReplayAB(ctx context.Context, tr *Trace, cfg ABConfig) (*ABResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Linger == 0 {
		cfg.Linger = 200 * time.Microsecond
	}

	echo := func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{Method: req.Method, Payload: req.Payload}, nil
	}
	srv, err := rpc.NewServer(echo, nil)
	if err != nil {
		return nil, err
	}
	defer srv.Close() //modelcheck:ignore errdrop — in-process server teardown; conns are closed below

	serveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	newClient := func() (*rpc.Client, error) {
		clientConn, serverConn := net.Pipe()
		go srv.ServeConn(serveCtx, serverConn)
		return rpc.NewClient(clientConn, nil)
	}
	arm := func(name string, call CallFunc) (ABArm, error) {
		reg := telemetry.NewRegistry()
		hist, err := reg.Histogram("replay_"+name+"_latency_nanos", "per-call replay latency in nanoseconds")
		if err != nil {
			return ABArm{}, err
		}
		stats, err := ReplayRPC(ctx, tr, call, RPCReplayConfig{
			Dilate:      cfg.Dilate,
			MaxInFlight: cfg.MaxInFlight,
			Latency:     hist,
		})
		return ABArm{Stats: stats, Latency: hist.Snapshot()}, err
	}

	res := &ABResult{Events: len(tr.Events)}

	// Unbatched arm: the raw client is sequential-only, so concurrent
	// replay requests serialize behind one connection — the head-of-line
	// baseline a per-request RPC stack pays under bursts.
	unbatched, err := newClient()
	if err != nil {
		return nil, err
	}
	defer unbatched.Close() //modelcheck:ignore errdrop — pipe close on teardown
	if res.Unbatched, err = arm("unbatched", SerializeCalls(unbatched.CallContext)); err != nil {
		return nil, fmt.Errorf("record: unbatched arm: %w", err)
	}

	// Batched arm: same trace, same timestamps, same payload bytes —
	// only the client stack changes.
	bc, err := newClient()
	if err != nil {
		return nil, err
	}
	defer bc.Close() //modelcheck:ignore errdrop — pipe close on teardown
	batcher, err := rpc.NewBatcher(bc, rpc.BatcherConfig{MaxBatch: cfg.MaxBatch, Linger: cfg.Linger})
	if err != nil {
		return nil, err
	}
	defer batcher.Close() //modelcheck:ignore errdrop — drains in-flight batches; errors surface per call
	if res.Batched, err = arm("batched", batcher.CallContext); err != nil {
		return nil, fmt.Errorf("record: batched arm: %w", err)
	}
	return res, nil
}
