package record

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/kernels"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Paired sync-vs-async serving replay: one recorded trace drives the same
// completion-queue server stack twice over TCP loopback. Both arms use an
// identically configured rpc.Engine (the same bounded worker pool W) and
// an identical simulated accelerator; the only difference is the threading
// design at the offload point. The sync arm's handler waits out the
// offload on the engine worker — the paper's Sync design, where at most W
// offloads make progress — while the async arm parks the continuation and
// frees the worker. Byte-identical arrivals at identical dilated
// timestamps make any p99 difference attributable to the threading design
// alone; a retry-storm trace makes the contrast vivid because its bursts
// stack far more than W requests in flight.

// ServingABConfig configures a sync-vs-async serving replay.
type ServingABConfig struct {
	// Dilate stretches (>1) or compresses (<1) the recorded inter-arrival
	// gaps in both arms; 0 means 1 (real time).
	Dilate float64
	// MaxInFlight bounds concurrently outstanding requests per arm
	// (default: RPCReplayConfig's).
	MaxInFlight int
	// Workers is each arm's engine pool size (default 4) — the W that
	// caps the sync arm's concurrent offloads.
	Workers int
	// OffloadLatency is the simulated accelerator's fixed latency L
	// (default 1ms).
	OffloadLatency time.Duration
	// Trace attaches a per-arm tracer to each arm's server, collecting
	// one span tree per replayed request (queue-wait, handler, park-wait
	// and resume-wait children) in ABArm.Spans — the raw material for
	// the explain mode's attribution delta between the two designs.
	Trace bool
}

// ServingABResult pairs the two serving arms of one replay.
type ServingABResult struct {
	Events      int
	Sync, Async ABArm
}

// servingResume is the async arm's parked continuation: acknowledge the
// completed offload. Package-level so parking allocates no closure.
var servingResume rpc.ResumeFunc = func(_ context.Context, ac *rpc.AsyncCall) (rpc.Message, error) {
	req := ac.Request()
	return rpc.Message{Method: req.Method, Payload: []byte{1}}, nil
}

// ReplayServingAB replays tr through the sync arm then the async arm and
// returns the paired measurements. The arms never run concurrently, so
// they do not contend for CPU with each other.
func ReplayServingAB(ctx context.Context, tr *Trace, cfg ServingABConfig) (*ServingABResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.OffloadLatency <= 0 {
		cfg.OffloadLatency = time.Millisecond
	}

	res := &ServingABResult{Events: len(tr.Events)}
	syncArm, err := runServingArm(ctx, tr, cfg, "sync", blockingOffloadHandler)
	if err != nil {
		return nil, fmt.Errorf("record: sync serving arm: %w", err)
	}
	res.Sync = syncArm
	asyncArm, err := runServingArm(ctx, tr, cfg, "async", parkingOffloadHandler)
	if err != nil {
		return nil, fmt.Errorf("record: async serving arm: %w", err)
	}
	res.Async = asyncArm
	return res, nil
}

// blockingOffloadHandler submits the offload and waits it out on the
// engine worker — the Sync threading design on a bounded pool.
func blockingOffloadHandler(dev rpc.Offloader) rpc.AsyncHandler {
	return func(ctx context.Context, req rpc.Message, _ *rpc.AsyncCall) (rpc.Message, error) {
		done := make(chan error, 1)
		if err := dev.Submit(ctx, uint64(len(req.Payload)), kernels.CompleterFunc(func(err error) { done <- err })); err != nil {
			return rpc.Message{}, err
		}
		if err := <-done; err != nil {
			return rpc.Message{}, err
		}
		return rpc.Message{Method: req.Method, Payload: []byte{1}}, nil
	}
}

// parkingOffloadHandler parks the continuation for the offload's
// duration, freeing the worker — the AsyncSameThread design.
func parkingOffloadHandler(dev rpc.Offloader) rpc.AsyncHandler {
	return func(_ context.Context, req rpc.Message, ac *rpc.AsyncCall) (rpc.Message, error) {
		if err := ac.Park(dev, uint64(len(req.Payload)), servingResume); err != nil {
			return rpc.Message{}, err
		}
		return rpc.Message{}, nil
	}
}

// runServingArm stands up one arm's full stack (device, engine, async
// server, mux client), replays the trace through it, and tears it down.
func runServingArm(ctx context.Context, tr *Trace, cfg ServingABConfig, name string,
	mkHandler func(rpc.Offloader) rpc.AsyncHandler) (ABArm, error) {
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: cfg.OffloadLatency})
	if err != nil {
		return ABArm{}, err
	}
	defer dev.Close() //modelcheck:ignore errdrop — arm teardown; replay errors surface per call
	eng, err := rpc.NewEngine(rpc.EngineConfig{Workers: cfg.Workers})
	if err != nil {
		return ABArm{}, err
	}
	defer eng.Close() //modelcheck:ignore errdrop — arm teardown; replay errors surface per call
	srv, err := rpc.NewAsyncServer(mkHandler(dev), eng, nil)
	if err != nil {
		return ABArm{}, err
	}
	defer srv.Close() //modelcheck:ignore errdrop — arm teardown; conns are closed below
	var tracer *telemetry.Tracer
	if cfg.Trace {
		tracer = telemetry.NewTracer(name)
		srv.Instrument(&rpc.Instrumentation{Tracer: tracer})
	}
	// net.Pipe, like the batching A/B in ab.go: an in-process transport
	// keeps kernel TCP out of the measurement — a loopback retransmit
	// (200 ms RTO) head-of-line blocks the single multiplexed connection
	// and poisons the tail with transport noise, which is not the
	// threading design under test.
	clientConn, serverConn := net.Pipe()
	serveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.ServeConn(serveCtx, serverConn)
	client, err := rpc.NewMuxClient(clientConn, nil)
	if err != nil {
		return ABArm{}, err
	}
	defer client.Close() //modelcheck:ignore errdrop — arm teardown; replay errors surface per call

	reg := telemetry.NewRegistry()
	hist, err := reg.Histogram("replay_serving_"+name+"_latency_nanos", "per-call replay latency in nanoseconds")
	if err != nil {
		return ABArm{}, err
	}
	stats, err := ReplayRPC(ctx, tr, client.CallContext, RPCReplayConfig{
		Dilate:      cfg.Dilate,
		MaxInFlight: cfg.MaxInFlight,
		Latency:     hist,
	})
	arm := ABArm{Stats: stats, Latency: hist.Snapshot()}
	if tracer != nil {
		arm.Spans = tracer.Spans()
	}
	return arm, err
}
