package record

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/tailtrace"
	"repro/internal/telemetry"
)

// Trigger watches telemetry for anomalies and dumps the recorder's ring
// to disk when one fires, so the flight recorder's last window of
// traffic — the requests that led into the anomaly — survives for
// offline replay. Two signals are supported, each optional:
//
//   - rolling p99: each poll diffs the latency histogram against the
//     previous poll's snapshot (telemetry.HistogramSnapshot.Delta) and
//     fires when the window's p99 crosses P99Threshold.
//   - error rate: fires when the error counter grows by at least
//     ErrorThreshold within one poll interval.
//
// Dumps are rate-limited to one per CooldownPolls polls and capped at
// MaxDumps per trigger lifetime, so a sustained incident cannot fill
// the disk with near-identical windows.
type TriggerConfig struct {
	// Recorder is the ring to dump. Required.
	Recorder *Recorder
	// Dir receives anomaly-NNN.trace dumps. Required.
	Dir string

	// Latency is the histogram whose rolling p99 is watched; nil
	// disables the latency signal.
	Latency *telemetry.Histogram
	// P99Threshold is the rolling-window p99 (in the histogram's unit)
	// at or above which the latency signal fires; <= 0 disables it.
	P99Threshold float64
	// MinWindowCount is the smallest rolling-window sample count the
	// latency signal trusts (default 10): a one-sample window's p99 is
	// noise, not an anomaly.
	MinWindowCount uint64

	// Errors is the counter whose growth is watched; nil disables the
	// error signal.
	Errors *telemetry.Counter
	// ErrorThreshold is the per-interval error growth at or above which
	// the error signal fires; 0 disables it.
	ErrorThreshold uint64

	// Spans, when non-nil, is sampled whenever a dump fires: the slowest
	// request among the returned spans is written alongside the ring as
	// anomaly-NNN.spans.json (a Chrome trace of that request's tree) so
	// the offending request — not just the traffic window around it —
	// survives for offline inspection.
	Spans func() []telemetry.SpanData

	// Interval is the poll period (default 1s).
	Interval time.Duration
	// MaxDumps caps dumps per trigger lifetime (default 16).
	MaxDumps int
	// CooldownPolls is how many polls must pass after a dump before the
	// next one may fire (default 5).
	CooldownPolls int
}

func (c *TriggerConfig) validate() error {
	if c.Recorder == nil {
		return fmt.Errorf("record: trigger needs a recorder")
	}
	if c.Dir == "" {
		return fmt.Errorf("record: trigger needs a dump directory")
	}
	latencyArmed := c.Latency != nil && c.P99Threshold > 0
	errorsArmed := c.Errors != nil && c.ErrorThreshold > 0
	if !latencyArmed && !errorsArmed {
		return fmt.Errorf("record: trigger has no armed signal (set Latency+P99Threshold or Errors+ErrorThreshold)")
	}
	return nil
}

// Trigger is a running anomaly watcher; create one with StartTrigger.
type Trigger struct {
	cfg      TriggerConfig
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu        sync.Mutex
	prevLat   telemetry.HistogramSnapshot
	prevErrs  uint64
	cooldown  int
	dumps     []string
	spanDumps []string
	lastErr   error
	polls     uint64
	firstPoll bool
}

// StartTrigger validates cfg, creates the dump directory, and starts
// the polling goroutine. Stop the returned trigger to shut it down.
func StartTrigger(cfg TriggerConfig) (*Trigger, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 16
	}
	if cfg.CooldownPolls <= 0 {
		cfg.CooldownPolls = 5
	}
	if cfg.MinWindowCount == 0 {
		cfg.MinWindowCount = 10
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("record: trigger dump dir: %w", err)
	}
	t := &Trigger{
		cfg:       cfg,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		firstPoll: true,
	}
	go t.loop()
	return t, nil
}

func (t *Trigger) loop() {
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.Poll()
		}
	}
}

// Poll runs one detection cycle immediately. The background loop calls
// it on every tick; tests call it directly to stay off the wall clock.
// It returns the dump path when this poll fired, "" otherwise.
func (t *Trigger) Poll() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.polls++

	var reasons []string
	if t.cfg.Latency != nil && t.cfg.P99Threshold > 0 {
		snap := t.cfg.Latency.Snapshot()
		if !t.firstPoll {
			win := snap.Delta(t.prevLat)
			if win.Count >= t.cfg.MinWindowCount && win.Quantile(0.99) >= t.cfg.P99Threshold {
				reasons = append(reasons, fmt.Sprintf("p99 %.3g >= %.3g over %d samples",
					win.Quantile(0.99), t.cfg.P99Threshold, win.Count))
			}
		}
		t.prevLat = snap
	}
	if t.cfg.Errors != nil && t.cfg.ErrorThreshold > 0 {
		v := t.cfg.Errors.Value()
		if !t.firstPoll && v-t.prevErrs >= t.cfg.ErrorThreshold {
			reasons = append(reasons, fmt.Sprintf("errors +%d >= %d", v-t.prevErrs, t.cfg.ErrorThreshold))
		}
		t.prevErrs = v
	}
	t.firstPoll = false

	if t.cooldown > 0 {
		t.cooldown--
		return ""
	}
	if len(reasons) == 0 || len(t.dumps) >= t.cfg.MaxDumps {
		return ""
	}
	path := filepath.Join(t.cfg.Dir, fmt.Sprintf("anomaly-%03d.trace", len(t.dumps)))
	if _, err := t.cfg.Recorder.WriteFile(path); err != nil {
		t.lastErr = err
		return ""
	}
	if t.cfg.Spans != nil {
		if err := t.dumpSlowestTrace(fmt.Sprintf("anomaly-%03d.spans.json", len(t.dumps))); err != nil {
			t.lastErr = err // the ring dump above still counts
		}
	}
	t.dumps = append(t.dumps, path)
	t.cooldown = t.cfg.CooldownPolls
	return path
}

// dumpSlowestTrace writes the slowest request's trace tree — the
// exemplar most likely to be the anomaly the signals reacted to — as a
// Chrome trace next to the ring dump.
func (t *Trigger) dumpSlowestTrace(name string) error {
	rep := tailtrace.Analyze(t.cfg.Spans(), tailtrace.Options{Exemplars: 1})
	if len(rep.Exemplars) == 0 {
		return nil
	}
	path := filepath.Join(t.cfg.Dir, name)
	if err := telemetry.WriteTraceFile(path, rep.Exemplars[0].Spans); err != nil {
		return err
	}
	t.spanDumps = append(t.spanDumps, path)
	return nil
}

// SpanDumps returns the trace-tree dump paths written so far, oldest
// first.
func (t *Trigger) SpanDumps() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.spanDumps...)
}

// Dumps returns the paths written so far, oldest first.
func (t *Trigger) Dumps() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.dumps...)
}

// Err returns the most recent dump failure, nil when healthy.
func (t *Trigger) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastErr
}

// Stop shuts the polling goroutine down and waits for it to exit.
// Safe to call on a nil trigger and idempotent.
func (t *Trigger) Stop() {
	if t == nil {
		return
	}
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}
