package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// caseStudy1Workload builds a sim workload matching the paper's Table 6
// AES-NI parameters on a single core: one 1109-cycle encryption per
// 6690-cycle request gives α ≈ 0.1658 and n ≈ 298,951 offloads/sec on a
// 2.0 GHz host.
func caseStudy1Workload() UniformWorkload {
	return UniformWorkload{
		NonKernelCycles: 5581,
		KernelsPerReq:   1,
		KernelBytes:     202, // 202 B at 5.5 cycles/B ≈ 1111 host cycles
		Kernel:          core.LinearKernel(5.5),
	}
}

func runSim(t *testing.T, cfg Config, wl Workload) Result {
	t.Helper()
	s, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	good := Config{Cores: 2, Threads: 4, HostHz: 2e9, Requests: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"threads below cores", func(c *Config) { c.Threads = 1 }},
		{"negative switch", func(c *Config) { c.ContextSwitch = -1 }},
		{"zero hz", func(c *Config) { c.HostHz = 0 }},
		{"zero requests", func(c *Config) { c.Requests = 0 }},
		{"bad accel A", func(c *Config) { c.Accel = &Accel{Threading: core.Sync, Strategy: core.OnChip, A: 0.5, Servers: 1} }},
		{"bad accel servers", func(c *Config) { c.Accel = &Accel{Threading: core.Sync, Strategy: core.OnChip, A: 2, Servers: 0} }},
		{"bad accel threading", func(c *Config) {
			c.Accel = &Accel{Threading: core.Threading(99), Strategy: core.OnChip, A: 2, Servers: 1}
		}},
		{"bad accel strategy", func(c *Config) {
			c.Accel = &Accel{Threading: core.Sync, Strategy: core.Strategy(99), A: 2, Servers: 1}
		}},
		{"negative overheads", func(c *Config) {
			c.Accel = &Accel{Threading: core.Sync, Strategy: core.OnChip, A: 2, Servers: 1, L: -1}
		}},
	}
	for _, tc := range cases {
		c := good
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil workload: want error")
	}
}

func TestBaselineThroughputExact(t *testing.T) {
	wl := UniformWorkload{NonKernelCycles: 1000, KernelsPerReq: 1, KernelBytes: 100, Kernel: core.LinearKernel(10)}
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each request costs exactly 2000 cycles on the host.
	res := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 2e6, Requests: 100}, wl)
	if res.Completed != 100 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if math.Abs(res.ElapsedCycles-200000) > 1e-6 {
		t.Errorf("elapsed = %v cycles, want 200000", res.ElapsedCycles)
	}
	if math.Abs(res.ThroughputQPS-1000) > 1e-6 {
		t.Errorf("throughput = %v QPS, want 1000", res.ThroughputQPS)
	}
	if math.Abs(res.MeanLatency-2000) > 1e-6 {
		t.Errorf("mean latency = %v, want 2000", res.MeanLatency)
	}
	if res.P50Latency != 2000 || res.P99Latency != 2000 || res.MaxLatency != 2000 {
		t.Errorf("uniform workload percentiles: p50=%v p99=%v max=%v, want all 2000",
			res.P50Latency, res.P99Latency, res.MaxLatency)
	}
	if res.Offloads != 0 || res.ContextSwaps != 0 {
		t.Errorf("baseline side effects: %+v", res)
	}
}

func TestMultiCoreScalesThroughput(t *testing.T) {
	wl := UniformWorkload{NonKernelCycles: 2000}
	one := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 1e6, Requests: 400}, wl)
	four := runSim(t, Config{Cores: 4, Threads: 4, HostHz: 1e6, Requests: 400}, wl)
	ratio := four.ThroughputQPS / one.ThroughputQPS
	if math.Abs(ratio-4) > 0.05 {
		t.Errorf("4-core throughput ratio = %v, want ~4", ratio)
	}
}

// The simulator must reproduce the model's Sync speedup (case study 1:
// AES-NI, 15.7%) within a small tolerance — the reproduction's analog of
// the paper's ≤3.7% validation error.
func TestSyncMatchesModelCaseStudy1(t *testing.T) {
	wl := caseStudy1Workload()
	hostCyclesPerKernel := wl.Kernel.HostCycles(wl.KernelBytes)
	totalPerReq := wl.NonKernelCycles + hostCyclesPerKernel

	base := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 2000}, wl)
	acc := runSim(t, Config{
		Cores: 1, Threads: 1, HostHz: 2e9, Requests: 2000,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OnChip, A: 6, O0: 10, L: 3, Servers: 1},
	}, wl)

	speedup, err := acc.Speedup(base)
	if err != nil {
		t.Fatal(err)
	}

	alpha := hostCyclesPerKernel / totalPerReq
	n := base.ThroughputQPS // one offload per request
	m := core.MustNew(core.Params{C: 2e9, Alpha: alpha, N: n, O0: 10, L: 3, A: 6})
	want, err := m.Speedup(core.Sync)
	if err != nil {
		t.Fatal(err)
	}
	if e := dist.RelativeError(speedup, want); e > 0.01 {
		t.Errorf("sim speedup %v vs model %v: error %.2f%%", speedup, want, e*100)
	}
	// Close to the paper's 15.7% too.
	if pct := (speedup - 1) * 100; pct < 15.0 || pct > 16.5 {
		t.Errorf("measured speedup = %.2f%%, paper's case study 1 ≈ 15.7%%", pct)
	}
	// Sync never context switches.
	if acc.ContextSwaps != 0 {
		t.Errorf("Sync context swaps = %d, want 0", acc.ContextSwaps)
	}
	if acc.Offloads != 2000 {
		t.Errorf("offloads = %d, want one per request", acc.Offloads)
	}
}

// Async (response-free, off-chip) must reproduce the model's eqn (6)
// speedup — case study 2's design.
func TestAsyncNoResponseMatchesModel(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 4000,
		KernelsPerReq:   1,
		KernelBytes:     180,
		Kernel:          core.LinearKernel(5.5),
	}
	kernelCycles := wl.Kernel.HostCycles(wl.KernelBytes) // 990
	total := wl.NonKernelCycles + kernelCycles

	base := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 2.3e9, Requests: 2000}, wl)
	acc := runSim(t, Config{
		Cores: 1, Threads: 1, HostHz: 2.3e9, Requests: 2000,
		Accel: &Accel{Threading: core.AsyncNoResponse, Strategy: core.OffChip, A: 8, L: 2530, Servers: 4},
	}, wl)

	speedup, _ := acc.Speedup(base)
	alpha := kernelCycles / total
	m := core.MustNew(core.Params{C: 2.3e9, Alpha: alpha, N: base.ThroughputQPS, L: 2530, A: 8})
	want, _ := m.Speedup(core.AsyncNoResponse)
	if e := dist.RelativeError(speedup, want); e > 0.01 {
		t.Errorf("sim %v vs model %v: error %.2f%%", speedup, want, e*100)
	}
}

// Sync-OS with oversubscribed threads must approach the model's eqn (3):
// the 2·o1 switch cost per offload arises from the scheduler mechanics.
func TestSyncOSMatchesModel(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 20000,
		KernelsPerReq:   1,
		KernelBytes:     2000,
		Kernel:          core.LinearKernel(3),
	}
	kernelCycles := wl.Kernel.HostCycles(wl.KernelBytes) // 6000
	total := wl.NonKernelCycles + kernelCycles
	const o1 = 1500.0

	base := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 4000}, wl)
	acc := runSim(t, Config{
		Cores: 1, Threads: 4, ContextSwitch: o1, HostHz: 2e9, Requests: 4000,
		Accel: &Accel{Threading: core.SyncOS, Strategy: core.OffChip, A: 10, L: 800, Servers: 8},
	}, wl)

	speedup, _ := acc.Speedup(base)
	alpha := kernelCycles / total
	m := core.MustNew(core.Params{C: 2e9, Alpha: alpha, N: base.ThroughputQPS, L: 800, O1: o1, A: 10})
	want, _ := m.Speedup(core.SyncOS)
	if e := dist.RelativeError(speedup, want); e > 0.04 {
		t.Errorf("sim %v vs model %v: error %.2f%%", speedup, want, e*100)
	}
	// Roughly two switches per offload.
	swapsPerOffload := float64(acc.ContextSwaps) / float64(acc.Offloads)
	if swapsPerOffload < 1.5 || swapsPerOffload > 2.5 {
		t.Errorf("context swaps per offload = %v, want ~2", swapsPerOffload)
	}
}

// Async with a distinct response thread must reproduce eqn (3) with a
// single o1 — case study 3's design.
func TestAsyncDistinctThreadMatchesModel(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 30000,
		KernelsPerReq:   1,
		KernelBytes:     2000,
		Kernel:          core.LinearKernel(5),
	}
	kernelCycles := wl.Kernel.HostCycles(wl.KernelBytes) // 10000
	total := wl.NonKernelCycles + kernelCycles
	const o1 = 2000.0

	base := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 2000}, wl)
	acc := runSim(t, Config{
		Cores: 1, Threads: 1, ContextSwitch: o1, HostHz: 2e9, Requests: 2000,
		Accel: &Accel{Threading: core.AsyncDistinctThread, Strategy: core.Remote, A: 1, O0: 500, Servers: 8},
	}, wl)
	speedup, _ := acc.Speedup(base)
	alpha := kernelCycles / total
	m := core.MustNew(core.Params{C: 2e9, Alpha: alpha, N: base.ThroughputQPS, O0: 500, O1: o1, A: 1})
	want, _ := m.Speedup(core.AsyncDistinctThread)
	if e := dist.RelativeError(speedup, want); e > 0.01 {
		t.Errorf("sim %v vs model %v: error %.2f%%", speedup, want, e*100)
	}
	if acc.ContextSwaps != 2000 {
		t.Errorf("distinct-thread swaps = %d, want one per offload", acc.ContextSwaps)
	}
}

// Requests with several kernel invocations offload each one.
func TestMultiKernelRequests(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 1000,
		KernelsPerReq:   3,
		KernelBytes:     100,
		Kernel:          core.LinearKernel(10),
	}
	res := runSim(t, Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: 100,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OnChip, A: 2, Servers: 1},
	}, wl)
	if res.Offloads != 300 {
		t.Errorf("offloads = %d, want 3 per request", res.Offloads)
	}
	// Per request: 1000 + 3·(1000/2) = 2500 cycles.
	if math.Abs(res.MeanLatency-2500) > 1e-6 {
		t.Errorf("mean latency = %v, want 2500", res.MeanLatency)
	}
}

// Async same-thread speedup beats Sync under a slow accelerator and its
// latency endpoint includes the accelerator completion.
func TestAsyncVsSyncOrdering(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 10000,
		KernelsPerReq:   1,
		KernelBytes:     1000,
		Kernel:          core.LinearKernel(5),
	}
	mk := func(th core.Threading) Result {
		return runSim(t, Config{
			Cores: 1, Threads: 1, HostHz: 1e9, Requests: 1000,
			Accel: &Accel{Threading: th, Strategy: core.OffChip, A: 1, L: 100, Servers: 1},
		}, wl)
	}
	sync := mk(core.Sync)
	async := mk(core.AsyncSameThread)
	if !(async.ThroughputQPS > sync.ThroughputQPS) {
		t.Errorf("async throughput %v should beat sync %v at A=1", async.ThroughputQPS, sync.ThroughputQPS)
	}
	if async.MeanLatency <= wl.NonKernelCycles {
		t.Errorf("async latency %v must include accelerator completion", async.MeanLatency)
	}
}

// A remote response-free offload removes the accelerator from the request
// latency path; an off-chip one does not.
func TestNoResponseLatencyStrategy(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 1000,
		KernelsPerReq:   1,
		KernelBytes:     10000,
		Kernel:          core.LinearKernel(10), // kernel dominates: 100k cycles
	}
	mk := func(st core.Strategy) Result {
		return runSim(t, Config{
			Cores: 1, Threads: 1, HostHz: 1e9, Requests: 200,
			Accel: &Accel{Threading: core.AsyncNoResponse, Strategy: st, A: 1, L: 50, Servers: 1},
		}, wl)
	}
	remote := mk(core.Remote)
	offchip := mk(core.OffChip)
	if !(remote.MeanLatency < offchip.MeanLatency/10) {
		t.Errorf("remote latency %v should exclude the 100k-cycle kernel; off-chip %v includes it",
			remote.MeanLatency, offchip.MeanLatency)
	}
	// Throughput is identical: the host work is the same.
	if math.Abs(remote.ThroughputQPS-offchip.ThroughputQPS) > remote.ThroughputQPS*1e-9 {
		t.Errorf("throughput differs: %v vs %v", remote.ThroughputQPS, offchip.ThroughputQPS)
	}
}

// A single shared accelerator saturates: queuing delays appear when many
// cores offload concurrently, and adding servers removes them.
func TestAcceleratorQueueing(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 100,
		KernelsPerReq:   1,
		KernelBytes:     1000,
		Kernel:          core.LinearKernel(10), // 10k cycles per kernel
	}
	congested := runSim(t, Config{
		Cores: 8, Threads: 8, HostHz: 1e9, Requests: 800,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OffChip, A: 2, L: 10, Servers: 1},
	}, wl)
	if congested.MeanQueueDelay <= 0 {
		t.Error("8 cores on one accelerator server must queue")
	}
	roomy := runSim(t, Config{
		Cores: 8, Threads: 8, HostHz: 1e9, Requests: 800,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OffChip, A: 2, L: 10, Servers: 8},
	}, wl)
	if !(roomy.MeanQueueDelay < congested.MeanQueueDelay/4) {
		t.Errorf("8 servers queue delay %v should be far below 1 server's %v",
			roomy.MeanQueueDelay, congested.MeanQueueDelay)
	}
	if !(roomy.ThroughputQPS > congested.ThroughputQPS) {
		t.Error("removing queueing must raise throughput")
	}
}

// Selective offload: invocations below SelectiveMinG run on the host.
func TestSelectiveOffload(t *testing.T) {
	// Alternating small/large kernels via a sampled workload over a CDF
	// with two spikes.
	cdf := dist.MustCDF(dist.MustLayout(64, 4096), []float64{0.5, 0, 0.5})
	wl, err := NewSampledWorkload(1000, 1, core.LinearKernel(5), cdf, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	all := runSim(t, Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: 1000,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OffChip, A: 10, L: 500, Servers: 1},
	}, wl)
	selective := runSim(t, Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: 1000,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OffChip, A: 10, L: 500, Servers: 1, SelectiveMinG: 200},
	}, wl)
	if selective.Offloads >= all.Offloads {
		t.Errorf("selective offloads %d should be below offload-all %d", selective.Offloads, all.Offloads)
	}
	// Small offloads (≤64 B at 5 c/B = ≤320 host cycles vs 500+ cycles
	// overhead) are unprofitable; filtering them must improve throughput.
	if !(selective.ThroughputQPS > all.ThroughputQPS) {
		t.Errorf("selective %v QPS should beat offload-all %v QPS",
			selective.ThroughputQPS, all.ThroughputQPS)
	}
}

func TestSampledWorkloadDeterminism(t *testing.T) {
	cdf := dist.MustCDF(dist.MustLayout(64, 256), []float64{0.3, 0.4, 0.3})
	a, err := NewSampledWorkload(100, 2, core.LinearKernel(2), cdf, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSampledWorkload(100, 2, core.LinearKernel(2), cdf, 50, 42)
	for i := 0; i < 100; i++ { // includes wrap-around beyond the horizon
		ra, rb := a.Request(i), b.Request(i)
		if len(ra.Kernels) != 2 || len(rb.Kernels) != 2 {
			t.Fatalf("kernels per request wrong at %d", i)
		}
		for j := range ra.Kernels {
			if ra.Kernels[j] != rb.Kernels[j] {
				t.Fatalf("same seed diverged at request %d", i)
			}
		}
	}
	if a.MeanKernelCycles() <= 0 {
		t.Error("mean kernel cycles should be positive")
	}
}

func TestSampledWorkloadErrors(t *testing.T) {
	cdf := dist.MustCDF(dist.MustLayout(64), []float64{1, 0})
	if _, err := NewSampledWorkload(-1, 1, core.LinearKernel(1), cdf, 10, 1); err == nil {
		t.Error("negative non-kernel: want error")
	}
	if _, err := NewSampledWorkload(1, 1, core.Kernel{}, cdf, 10, 1); err == nil {
		t.Error("invalid kernel: want error")
	}
	if _, err := NewSampledWorkload(1, 1, core.LinearKernel(1), nil, 10, 1); err == nil {
		t.Error("nil CDF: want error")
	}
	if _, err := NewSampledWorkload(1, 1, core.LinearKernel(1), cdf, 0, 1); err == nil {
		t.Error("zero requests: want error")
	}
	// Zero kernels per request needs no CDF.
	w, err := NewSampledWorkload(10, 0, core.Kernel{}, nil, 5, 1)
	if err != nil {
		t.Fatalf("zero-kernel workload: %v", err)
	}
	if len(w.Request(0).Kernels) != 0 {
		t.Error("zero-kernel workload produced kernels")
	}
	if w.MeanKernelCycles() != 0 {
		t.Error("zero-kernel mean should be 0")
	}
}

func TestUniformWorkloadValidate(t *testing.T) {
	if err := (UniformWorkload{NonKernelCycles: -1}).Validate(); err == nil {
		t.Error("negative cycles: want error")
	}
	if err := (UniformWorkload{KernelsPerReq: -1}).Validate(); err == nil {
		t.Error("negative kernels: want error")
	}
	if err := (UniformWorkload{KernelsPerReq: 1}).Validate(); err == nil {
		t.Error("kernel without cost model: want error")
	}
	if err := (UniformWorkload{}).Validate(); err != nil {
		t.Errorf("empty workload should validate: %v", err)
	}
}

func TestResultHelpers(t *testing.T) {
	a := Result{ThroughputQPS: 110, MeanLatency: 90}
	b := Result{ThroughputQPS: 100, MeanLatency: 100}
	s, err := a.Speedup(b)
	if err != nil || math.Abs(s-1.1) > 1e-12 {
		t.Errorf("Speedup = %v, %v", s, err)
	}
	l, err := a.LatencyReduction(b)
	if err != nil || math.Abs(l-100.0/90) > 1e-12 {
		t.Errorf("LatencyReduction = %v, %v", l, err)
	}
	if _, err := a.Speedup(Result{}); err == nil {
		t.Error("zero baseline: want error")
	}
	if _, err := (Result{}).LatencyReduction(b); err == nil {
		t.Error("zero latency: want error")
	}
}
