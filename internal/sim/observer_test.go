package sim

import (
	"math"
	"reflect"
	"testing"
)

// Tests for the two trace-replay hooks: explicit arrival schedules
// (Arrivals.Times) and the per-request completion Observer.

func TestArrivalsTimesValidate(t *testing.T) {
	good := []Arrivals{
		{Times: []float64{0, 0, 10, 10.5}},
		{Times: []float64{5}},
		{Times: []float64{1, 2}, RatePerSec: -3}, // rate ignored when Times set
	}
	for i, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("good schedule %d: %v", i, err)
		}
	}
	bad := []Arrivals{
		{Times: []float64{10, 5}},            // decreasing
		{Times: []float64{-1, 2}},            // negative
		{Times: []float64{0, math.NaN()}},    // NaN
		{Times: []float64{0, math.Inf(1)}},   // infinite
		{Times: []float64{math.Inf(-1), 0}},  // -Inf
		{Times: []float64{0, 1, 2, 1.99999}}, // late decrease
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad schedule %d: want error", i)
		}
	}
}

func TestArrivalsTimesTooShort(t *testing.T) {
	_, err := New(Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: 5,
		Arrivals: &Arrivals{Times: []float64{0, 100}},
	}, UniformWorkload{NonKernelCycles: 100})
	if err == nil {
		t.Fatal("schedule shorter than the run: want error")
	}
}

// An explicit schedule is honored exactly: with one thread and requests
// arriving far apart, every request starts at its scheduled arrival and
// latency equals the bare service time.
func TestExplicitScheduleHonored(t *testing.T) {
	times := []float64{0, 50000, 100000, 175000}
	var seen []ObservedRequest
	s, err := New(Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: len(times),
		Arrivals: &Arrivals{Times: times},
		Observer: func(o ObservedRequest) { seen = append(seen, o) },
	}, UniformWorkload{NonKernelCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(times) {
		t.Fatalf("completed = %d, want %d", res.Completed, len(times))
	}
	if res.MeanLatency != 10000 {
		t.Errorf("mean latency = %v, want exactly the 10k service time (no queueing)", res.MeanLatency)
	}
	if len(seen) != len(times) {
		t.Fatalf("observer saw %d requests, want %d", len(seen), len(times))
	}
	for i, o := range seen {
		if o.Index != i {
			t.Errorf("observation %d: index = %d", i, o.Index)
		}
		if o.Arrival != times[i] || o.Start != times[i] { //modelcheck:ignore floatcmp — virtual time is exact integer arithmetic
			t.Errorf("request %d: arrival/start = %v/%v, want %v", i, o.Arrival, o.Start, times[i])
		}
		if o.End != times[i]+10000 { //modelcheck:ignore floatcmp — virtual time is exact integer arithmetic
			t.Errorf("request %d: end = %v, want %v", i, o.End, times[i]+10000)
		}
	}
}

// When requests arrive faster than the single thread drains them, the
// observer separates arrival (latency clock) from processing start.
func TestObserverSeparatesArrivalFromStart(t *testing.T) {
	times := []float64{0, 1000} // second request arrives mid-first
	var seen []ObservedRequest
	s, err := New(Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: 2,
		Arrivals: &Arrivals{Times: times},
		Observer: func(o ObservedRequest) { seen = append(seen, o) },
	}, UniformWorkload{NonKernelCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d requests", len(seen))
	}
	second := seen[1]
	if second.Arrival != 1000 {
		t.Errorf("second arrival = %v, want 1000", second.Arrival)
	}
	if second.Start != 10000 {
		t.Errorf("second start = %v, want 10000 (after first drains)", second.Start)
	}
	if got, want := second.End-second.Arrival, 19000.0; got != want { //modelcheck:ignore floatcmp — virtual time is exact integer arithmetic
		t.Errorf("second latency = %v, want %v (9k wait + 10k service)", got, want)
	}
}

// Closed-loop observation: arrival equals processing start, and the
// observations cover every request exactly once.
func TestObserverClosedLoop(t *testing.T) {
	var seen []ObservedRequest
	s, err := New(Config{
		Cores: 2, Threads: 2, HostHz: 1e9, Requests: 100,
		Observer: func(o ObservedRequest) { seen = append(seen, o) },
	}, UniformWorkload{NonKernelCycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("observer saw %d requests, want 100", len(seen))
	}
	indices := map[int]bool{}
	for _, o := range seen {
		if o.Arrival != o.Start { //modelcheck:ignore floatcmp — unqueued request starts at its exact arrival tick
			t.Errorf("closed loop: arrival %v != start %v", o.Arrival, o.Start)
		}
		if o.End < o.Start {
			t.Errorf("request %d: end %v before start %v", o.Index, o.End, o.Start)
		}
		if indices[o.Index] {
			t.Errorf("request %d observed twice", o.Index)
		}
		indices[o.Index] = true
	}
}

// Attaching an observer never changes the run's Result, and an explicit
// schedule replayed twice yields byte-identical results.
func TestObserverAndReplayDoNotPerturb(t *testing.T) {
	cfg := Config{
		Cores: 2, Threads: 2, HostHz: 1e9, Requests: 500,
		Arrivals: &Arrivals{RatePerSec: 50000, Seed: 7},
	}
	wl := UniformWorkload{NonKernelCycles: 8000}
	plain := runSim(t, cfg, wl)

	observed := cfg
	observed.Observer = func(ObservedRequest) {}
	withObs := runSim(t, observed, wl)
	if !reflect.DeepEqual(plain, withObs) {
		t.Error("attaching an observer changed the Result")
	}

	// Re-run the same offered stream through an explicit schedule: the
	// Poisson draw for this seed, replayed as Times, reproduces the run.
	var times []float64
	rec := cfg
	rec.Observer = func(o ObservedRequest) { times = append(times, o.Arrival) }
	runSim(t, rec, wl)
	sortFloats(times)
	replayCfg := Config{
		Cores: 2, Threads: 2, HostHz: 1e9, Requests: 500,
		Arrivals: &Arrivals{Times: times},
	}
	a := runSim(t, replayCfg, wl)
	b := runSim(t, replayCfg, wl)
	if !reflect.DeepEqual(a, b) {
		t.Error("replaying the same schedule twice diverged")
	}
	if !reflect.DeepEqual(a, plain) {
		t.Error("replaying the recorded arrival schedule did not reproduce the original run")
	}
}

// sortFloats sorts ascending (completion order can differ from arrival
// order under concurrency).
func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
