package sim

import (
	"errors"
	"math"

	"repro/internal/telemetry"
)

// MergeResults combines per-service (or per-shard) Results into one
// fleet-level Result, as if the runs executed side by side on disjoint
// hardware: counts sum, elapsed time is the wall clock of the slowest
// member, throughput sums, the latency distribution is the merged
// histogram with quantiles recomputed from it, and the mean queue delay
// is weighted by each member's offload count. Merging in a fixed input
// order is fully deterministic, so aggregates built this way are
// byte-identical across runs (the fleet driver relies on this for its
// golden tests).
func MergeResults(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, errors.New("sim: no results to merge")
	}
	var out Result
	snap := telemetry.HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
	var queueDelay float64
	for _, r := range results {
		out.Completed += r.Completed
		out.Offloads += r.Offloads
		out.ContextSwaps += r.ContextSwaps
		out.AccelBusy += r.AccelBusy
		out.ThroughputQPS += r.ThroughputQPS
		if r.ElapsedCycles > out.ElapsedCycles {
			out.ElapsedCycles = r.ElapsedCycles
		}
		queueDelay += r.MeanQueueDelay * float64(r.Offloads)
		snap = snap.Merge(r.LatencyHistogram)
	}
	out.LatencyHistogram = snap
	if snap.Count > 0 {
		out.MeanLatency = snap.Mean()
		out.P50Latency = snap.Quantile(0.50)
		out.P95Latency = snap.Quantile(0.95)
		out.P99Latency = snap.Quantile(0.99)
		out.P999Latency = snap.Quantile(0.999)
		out.MaxLatency = snap.Max
	}
	if out.Offloads > 0 {
		out.MeanQueueDelay = queueDelay / float64(out.Offloads)
	}
	return out, nil
}
