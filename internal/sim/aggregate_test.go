package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func runAggSim(t *testing.T, requests int, seed uint64) Result {
	t.Helper()
	cdf := dist.MustCDF(dist.MustLayout(64, 512), []float64{0.75, 0, 0.25})
	wl, err := NewSampledWorkload(20000, 4, core.LinearKernel(5.5), cdf, requests, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Cores:    2,
		Threads:  2,
		HostHz:   2e9,
		Requests: requests,
		Accel: &Accel{
			Threading: core.Sync,
			Strategy:  core.OffChip,
			A:         10,
			O0:        500,
			L:         300,
			Servers:   1,
		},
	}
	s, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMergeResultsSingleIsIdentityish(t *testing.T) {
	r := runAggSim(t, 200, 7)
	got, err := MergeResults([]Result{r})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("single-result merge diverged:\n got %+v\nwant %+v", got, r)
	}
}

func TestMergeResultsCombines(t *testing.T) {
	a := runAggSim(t, 150, 1)
	b := runAggSim(t, 250, 2)
	m, err := MergeResults([]Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != a.Completed+b.Completed {
		t.Errorf("Completed = %d, want %d", m.Completed, a.Completed+b.Completed)
	}
	if m.Offloads != a.Offloads+b.Offloads {
		t.Errorf("Offloads = %d, want %d", m.Offloads, a.Offloads+b.Offloads)
	}
	if m.ThroughputQPS != a.ThroughputQPS+b.ThroughputQPS { //modelcheck:ignore floatcmp — merge sums the parts with the same fp additions
		t.Errorf("ThroughputQPS = %v, want sum %v", m.ThroughputQPS, a.ThroughputQPS+b.ThroughputQPS)
	}
	if want := a.ElapsedCycles; b.ElapsedCycles > want {
		want = b.ElapsedCycles
	} else if m.ElapsedCycles != want { //modelcheck:ignore floatcmp — elapsed is a max, not an accumulation
		t.Errorf("ElapsedCycles = %v, want max %v", m.ElapsedCycles, want)
	}
	if m.LatencyHistogram.Count != a.LatencyHistogram.Count+b.LatencyHistogram.Count {
		t.Errorf("histogram count = %d, want %d",
			m.LatencyHistogram.Count, a.LatencyHistogram.Count+b.LatencyHistogram.Count)
	}
	// The merged p50 must lie within the members' latency range.
	lo, hi := a.LatencyHistogram.Min, a.LatencyHistogram.Max
	if b.LatencyHistogram.Min < lo {
		lo = b.LatencyHistogram.Min
	}
	if b.LatencyHistogram.Max > hi {
		hi = b.LatencyHistogram.Max
	}
	if m.P50Latency < lo || m.P50Latency > hi {
		t.Errorf("merged p50 %v outside member range [%v, %v]", m.P50Latency, lo, hi)
	}
	// Mean is exact: weighted by counts.
	wantMean := (a.LatencyHistogram.Sum + b.LatencyHistogram.Sum) /
		float64(a.LatencyHistogram.Count+b.LatencyHistogram.Count)
	if m.MeanLatency != wantMean { //modelcheck:ignore floatcmp — recomputed from the same sums in the same order
		t.Errorf("MeanLatency = %v, want %v", m.MeanLatency, wantMean)
	}
}

func TestMergeResultsDeterministic(t *testing.T) {
	a := runAggSim(t, 150, 1)
	b := runAggSim(t, 250, 2)
	first, err := MergeResults([]Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := MergeResults([]Result{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("merge is not deterministic: run %d diverged", i)
		}
	}
}

func TestMergeResultsEmpty(t *testing.T) {
	if _, err := MergeResults(nil); err == nil {
		t.Error("empty merge: want error")
	}
}
