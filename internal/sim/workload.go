package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

// UniformWorkload issues identical requests: NonKernelCycles of host work
// plus KernelsPerReq kernel invocations of KernelBytes each, costing the
// host Kernel.HostCycles(KernelBytes) cycles apiece.
type UniformWorkload struct {
	NonKernelCycles float64
	KernelsPerReq   int
	KernelBytes     uint64
	Kernel          core.Kernel
}

// Validate checks the workload's parameters.
func (w UniformWorkload) Validate() error {
	if w.NonKernelCycles < 0 {
		return fmt.Errorf("sim: negative non-kernel cycles %v", w.NonKernelCycles)
	}
	if w.KernelsPerReq < 0 {
		return fmt.Errorf("sim: negative kernels per request %d", w.KernelsPerReq)
	}
	if w.KernelsPerReq > 0 {
		return w.Kernel.Validate()
	}
	return nil
}

// Request implements Workload.
func (w UniformWorkload) Request(int) Request {
	req := Request{NonKernelCycles: w.NonKernelCycles}
	if w.KernelsPerReq > 0 {
		inv := Invocation{Bytes: w.KernelBytes, HostCycles: w.Kernel.HostCycles(w.KernelBytes)}
		req.Kernels = make([]Invocation, w.KernelsPerReq)
		for i := range req.Kernels {
			req.Kernels[i] = inv
		}
	}
	return req
}

// SampledWorkload issues requests whose kernel-invocation sizes are drawn
// from a granularity CDF. Sizes are pre-sampled at construction so that
// paired A/B runs (baseline vs accelerated) see byte-identical request
// streams, mirroring the paper's A/B testing of identical servers under
// identical load.
type SampledWorkload struct {
	nonKernel float64
	perReq    int
	kernel    core.Kernel
	sizes     []uint64
}

// NewSampledWorkload pre-samples sizes for `requests` requests with
// kernelsPerReq invocations each.
func NewSampledWorkload(nonKernelCycles float64, kernelsPerReq int, k core.Kernel,
	sizeCDF *dist.CDF, requests int, seed uint64) (*SampledWorkload, error) {
	if nonKernelCycles < 0 {
		return nil, fmt.Errorf("sim: negative non-kernel cycles %v", nonKernelCycles)
	}
	if kernelsPerReq < 0 || requests < 1 {
		return nil, fmt.Errorf("sim: invalid shape (kernels=%d requests=%d)", kernelsPerReq, requests)
	}
	if kernelsPerReq > 0 {
		if err := k.Validate(); err != nil {
			return nil, err
		}
		if sizeCDF == nil {
			return nil, errors.New("sim: nil size CDF")
		}
	}
	w := &SampledWorkload{nonKernel: nonKernelCycles, perReq: kernelsPerReq, kernel: k}
	if kernelsPerReq > 0 {
		sampler, err := dist.NewSampler(sizeCDF, dist.NewRand(seed))
		if err != nil {
			return nil, err
		}
		w.sizes = sampler.SampleN(kernelsPerReq * requests)
	}
	return w, nil
}

// Request implements Workload; indices beyond the pre-sampled horizon wrap
// around, keeping the stream deterministic for any request count.
func (w *SampledWorkload) Request(i int) Request {
	req := Request{NonKernelCycles: w.nonKernel}
	if w.perReq == 0 {
		return req
	}
	req.Kernels = make([]Invocation, w.perReq)
	for j := 0; j < w.perReq; j++ {
		size := w.sizes[(i*w.perReq+j)%len(w.sizes)]
		req.Kernels[j] = Invocation{Bytes: size, HostCycles: w.kernel.HostCycles(size)}
	}
	return req
}

// MeanKernelCycles returns the average host cycles per kernel invocation
// across the pre-sampled stream; useful for deriving the model's α from a
// sim workload.
func (w *SampledWorkload) MeanKernelCycles() float64 {
	if len(w.sizes) == 0 {
		return 0
	}
	var sum float64
	for _, size := range w.sizes {
		sum += w.kernel.HostCycles(size)
	}
	return sum / float64(len(w.sizes))
}
