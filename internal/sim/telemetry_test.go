package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Attaching a telemetry registry must not change the simulation's result,
// and must expose the latency/queue instruments with consistent totals.
func TestTelemetryDoesNotPerturbResult(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 100,
		KernelsPerReq:   1,
		KernelBytes:     1000,
		Kernel:          core.LinearKernel(10),
	}
	cfg := Config{
		Cores: 8, Threads: 8, HostHz: 1e9, Requests: 400,
		Accel: &Accel{Threading: core.Sync, Strategy: core.OffChip, A: 2, L: 10, Servers: 1},
	}
	plain := runSim(t, cfg, wl)

	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	instrumented := runSim(t, cfg, wl)

	if plain.ThroughputQPS != instrumented.ThroughputQPS || //modelcheck:ignore floatcmp — identical runs must agree bit-for-bit
		plain.MeanLatency != instrumented.MeanLatency || //modelcheck:ignore floatcmp — identical runs must agree bit-for-bit
		plain.P99Latency != instrumented.P99Latency || //modelcheck:ignore floatcmp — identical runs must agree bit-for-bit
		plain.Offloads != instrumented.Offloads ||
		plain.ContextSwaps != instrumented.ContextSwaps {
		t.Errorf("telemetry perturbed the run:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, metric := range []string{
		"sim_request_latency_cycles", "sim_queue_delay_cycles",
		"sim_accel_queued", "sim_accel_executing",
	} {
		if !strings.Contains(out, metric) {
			t.Errorf("exported metrics missing %s:\n%s", metric, out)
		}
	}
	// All offloads drained: both phase gauges must be back to zero.
	checkGauge := func(name string) {
		t.Helper()
		g, err := reg.Gauge(name, "")
		if err != nil {
			t.Fatal(err)
		}
		if g.Value() != 0 {
			t.Errorf("%s = %d after run, want 0", name, g.Value())
		}
	}
	checkGauge("sim_accel_queued")
	checkGauge("sim_accel_executing")

	qd, err := reg.Histogram("sim_queue_delay_cycles", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := qd.Count(); got != uint64(instrumented.Offloads) {
		t.Errorf("queue-delay observations = %d, want one per offload (%d)", got, instrumented.Offloads)
	}
	if mean := qd.Sum() / float64(qd.Count()); math.Abs(mean-instrumented.MeanQueueDelay) > 1e-9*instrumented.MeanQueueDelay {
		t.Errorf("queue-delay histogram mean %v vs result %v", mean, instrumented.MeanQueueDelay)
	}
}

// Result latency quantiles come from the histogram and must sit within its
// documented relative-error bound of the exact order statistics; the full
// distribution must ride along on the Result.
func TestResultQuantilesWithinBound(t *testing.T) {
	// Two latency classes: 2000-cycle requests with an occasional
	// 22000-cycle giant (every 10th), so p50 and p999 differ.
	wl := mixedWorkload{}
	res := runSim(t, Config{Cores: 1, Threads: 1, HostHz: 1e9, Requests: 1000}, wl)
	if res.LatencyHistogram.Count != 1000 {
		t.Fatalf("histogram count = %d, want 1000", res.LatencyHistogram.Count)
	}
	tol := 2 * telemetry.QuantileRelError
	check := func(name string, got, exact float64) {
		t.Helper()
		if math.Abs(got-exact) > exact*tol {
			t.Errorf("%s = %v, want within %.1f%% of %v", name, got, tol*100, exact)
		}
	}
	check("p50", res.P50Latency, 2000)
	check("p95", res.P95Latency, 22000)
	check("p999", res.P999Latency, 22000)
	if res.MaxLatency != 22000 { //modelcheck:ignore floatcmp — max is exact by construction
		t.Errorf("max = %v, want exact 22000", res.MaxLatency)
	}
	if res.P999Latency < res.P50Latency {
		t.Error("p999 below p50")
	}
}

// mixedWorkload: every 10th request carries a 10x kernel.
type mixedWorkload struct{}

func (mixedWorkload) Request(i int) Request {
	r := Request{NonKernelCycles: 1000, Kernels: []Invocation{{Bytes: 100, HostCycles: 1000}}}
	if i%10 == 9 {
		r.Kernels[0] = Invocation{Bytes: 2100, HostCycles: 21000}
	}
	return r
}
