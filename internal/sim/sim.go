// Package sim is a discrete-event simulator of the paper's host /
// interface / accelerator abstraction (§3, Figs 11-14). It executes the
// offload timelines the Accelerometer model approximates in closed form —
// Sync (the core waits), Sync-OS (the OS switches to another runnable
// thread, paying context switches), and the Async variants — including
// accelerator queuing, so it serves as the reproduction's independent
// "measured" ground truth for model validation, standing in for the
// paper's production A/B tests (§4).
//
// The simulator is a closed-loop system: a fixed set of worker threads
// process requests back to back on a fixed set of cores. Time is counted
// in host cycles. Each request consists of non-kernel host work plus zero
// or more kernel invocations; with acceleration configured, kernel
// invocations are offloaded according to the threading design, with the
// per-offload overheads o0 (setup), L (interface transfer), queuing at the
// accelerator, and o1 (context switch) arising from the simulated
// mechanics rather than being summed analytically.
//
// Granularity note: threads yield to the event loop at request boundaries
// (and at Sync-OS blocking points), so cross-thread accelerator contention
// is resolved at request granularity. This bounds causality error by one
// request's span — negligible for the fleet-scale workloads simulated
// here — while keeping the engine simple.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/telemetry"
)

// Accel configures the accelerator and the offload design.
type Accel struct {
	Threading core.Threading
	Strategy  core.Strategy
	A         float64 // peak accelerator speedup over the host
	O0        float64 // host cycles to set up one offload
	L         float64 // interface cycles per offload
	Servers   int     // accelerator-side parallelism (≥1)
	// SelectiveMinG, when > 0, offloads only kernel invocations of at
	// least this many bytes; smaller invocations run on the host.
	SelectiveMinG uint64
}

// Validate checks the accelerator configuration.
func (a Accel) Validate() error {
	switch a.Threading {
	case core.Sync, core.SyncOS, core.AsyncSameThread, core.AsyncDistinctThread, core.AsyncNoResponse:
	default:
		return fmt.Errorf("sim: unknown threading %d", int(a.Threading))
	}
	switch a.Strategy {
	case core.OnChip, core.OffChip, core.Remote:
	default:
		return fmt.Errorf("sim: unknown strategy %d", int(a.Strategy))
	}
	if a.A < 1 || math.IsNaN(a.A) {
		return fmt.Errorf("sim: A = %v, want >= 1", a.A)
	}
	if a.O0 < 0 || a.L < 0 {
		return fmt.Errorf("sim: negative offload overheads (o0=%v L=%v)", a.O0, a.L)
	}
	if a.Servers < 1 {
		return fmt.Errorf("sim: accelerator servers = %d, want >= 1", a.Servers)
	}
	return nil
}

// Arrivals configures open-loop request arrivals. When nil, the simulator
// runs closed-loop: every thread processes requests back to back (peak
// load, the paper's measurement condition). With Arrivals set, requests
// arrive open-loop — either as a Poisson process (RatePerSec) or on an
// explicit recorded schedule (Times) — and per-request latency includes
// the time a request waits for a free thread, enabling
// tail-latency-vs-load studies and deterministic trace replay.
type Arrivals struct {
	RatePerSec float64 // offered load λ in requests per second
	Seed       uint64  // interarrival randomness seed

	// Times, when non-empty, is an explicit arrival schedule in host
	// cycles: request i arrives at Times[i]. It overrides the Poisson
	// process (RatePerSec and Seed are ignored), which is how
	// internal/record replays a captured request stream through the
	// simulator on byte-identical arrivals. The schedule must be
	// non-negative and non-decreasing and cover every request of the run
	// (len(Times) >= Config.Requests; New enforces the length).
	Times []float64
}

// Validate checks the arrival process.
func (a Arrivals) Validate() error {
	if len(a.Times) > 0 {
		prev := 0.0
		for i, t := range a.Times {
			if !(t >= prev) || math.IsInf(t, 0) { // also rejects NaN
				return fmt.Errorf("sim: arrival schedule not non-decreasing at index %d (%v after %v)", i, t, prev)
			}
			prev = t
		}
		return nil
	}
	if !(a.RatePerSec > 0) || math.IsInf(a.RatePerSec, 0) {
		return fmt.Errorf("sim: arrival rate = %v, want finite > 0", a.RatePerSec)
	}
	return nil
}

// ObservedRequest is the per-request completion record handed to a
// Config.Observer: the workload index plus the request's timeline in host
// cycles. For closed-loop runs Arrival equals Start (the moment a thread
// picked the request up); for open-loop runs Arrival is the offered
// arrival time and Start-Arrival is the wait for a free thread.
type ObservedRequest struct {
	Index   int     // workload request index
	Arrival float64 // arrival time, cycles (latency clock start)
	Start   float64 // first cycle of processing
	End     float64 // completion time, cycles
}

// Config configures one simulation run.
type Config struct {
	Cores         int       // host cores
	Threads       int       // worker threads (= Cores for Sync; > Cores for Sync-OS)
	ContextSwitch float64   // o1: cycles per thread switch
	HostHz        float64   // host busy frequency, cycles per second
	Accel         *Accel    // nil simulates the unaccelerated baseline
	Requests      int       // requests to complete before stopping
	Arrivals      *Arrivals // nil = closed loop at peak load

	// Observer, when non-nil, is called once per completed request, in
	// completion order as the event loop advances. Observers only read the
	// completion record — the simulator never lets them mutate its state —
	// so attaching one never changes a run's Result. internal/record's
	// flight recorder hooks in here; the disabled path is one nil check.
	Observer func(ObservedRequest)

	// Telemetry, when non-nil, registers the run's instruments there:
	// sim_request_latency_cycles (histogram), sim_queue_delay_cycles
	// (histogram), and the offload-phase gauges sim_accel_queued /
	// sim_accel_executing, updated in simulated-time order as the event
	// loop advances. Latency accounting itself is always on (the Result
	// histogram); the registry only adds the export path. Gauge events do
	// not mutate simulation state, so attaching telemetry never changes a
	// run's Result.
	Telemetry *telemetry.Registry
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: cores = %d, want >= 1", c.Cores)
	}
	if c.Threads < c.Cores {
		return fmt.Errorf("sim: threads = %d, want >= cores (%d)", c.Threads, c.Cores)
	}
	if c.ContextSwitch < 0 {
		return fmt.Errorf("sim: negative context switch cost %v", c.ContextSwitch)
	}
	if !(c.HostHz > 0) {
		return fmt.Errorf("sim: host frequency = %v, want > 0", c.HostHz)
	}
	if c.Requests < 1 {
		return fmt.Errorf("sim: requests = %d, want >= 1", c.Requests)
	}
	if c.Arrivals != nil {
		if err := c.Arrivals.Validate(); err != nil {
			return err
		}
	}
	if c.Accel != nil {
		return c.Accel.Validate()
	}
	return nil
}

// Invocation is one kernel invocation within a request.
type Invocation struct {
	Bytes      uint64  // offload granularity g
	HostCycles float64 // cycles the host would spend executing it (Cb·g^β)
}

// Request is one unit of work: non-kernel host cycles plus kernel
// invocations.
type Request struct {
	NonKernelCycles float64
	Kernels         []Invocation
}

// Workload supplies the request stream. Implementations must be
// deterministic for a given construction so A/B runs see identical load.
type Workload interface {
	// Request returns the i-th request (0-based).
	Request(i int) Request
}

// Result reports a simulation run's measurements. Latency quantiles are
// read from LatencyHistogram, so P50/P95/P99/P999 carry the histogram's
// telemetry.QuantileRelError bound (~2.2%); Mean and Max are exact.
type Result struct {
	Completed      int
	ElapsedCycles  float64
	ThroughputQPS  float64 // completed requests per second at HostHz
	MeanLatency    float64 // cycles per request, arrival to completion
	P50Latency     float64
	P95Latency     float64
	P99Latency     float64
	P999Latency    float64
	MaxLatency     float64
	Offloads       int
	MeanQueueDelay float64 // mean accelerator queuing cycles per offload
	ContextSwaps   int     // o1 charges incurred
	AccelBusy      float64 // accelerator busy cycles (all servers)

	// LatencyHistogram is the full request-latency distribution in host
	// cycles (populated buckets only), for export or finer quantiles.
	LatencyHistogram telemetry.HistogramSnapshot
}

// Speedup returns the throughput ratio of this result over a baseline.
func (r Result) Speedup(baseline Result) (float64, error) {
	if baseline.ThroughputQPS <= 0 {
		return 0, errors.New("sim: baseline throughput is zero")
	}
	return r.ThroughputQPS / baseline.ThroughputQPS, nil
}

// LatencyReduction returns the mean-latency ratio baseline/this.
func (r Result) LatencyReduction(baseline Result) (float64, error) {
	if r.MeanLatency <= 0 {
		return 0, errors.New("sim: accelerated latency is zero")
	}
	return baseline.MeanLatency / r.MeanLatency, nil
}

// event is a scheduled callback in the simulation.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//modelcheck:ignore floatcmp — heap ordering must compare timestamps exactly
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// thread is one simulated worker.
type thread struct {
	id        int
	reqIndex  int     // request currently being processed (-1: finished)
	segCursor int     // next kernel invocation within the request
	inFlight  bool    // a request is underway (reqStart valid)
	reqStart  float64 // latency-clock start of the current request
	procStart float64 // first processing cycle (= reqStart when closed-loop)
	arrival   float64 // open-loop arrival time of the current request
	asyncDone float64 // latest async offload completion for this request
	woke      bool    // just woken from an offload block (owes a switch-in)
}

// Sim runs one configuration against a workload.
type Sim struct {
	cfg Config
	wl  Workload

	events eventHeap
	seq    int64
	now    float64

	readyQ    []*thread
	idleCores []int // stack of free core ids

	accelFree []float64 // per-server next-free time

	arrivalTimes []float64 // open-loop arrival time per request index

	nextReq   int
	completed int
	latHist   *telemetry.Histogram // request latency, cycles

	offloads     int
	queueDelay   float64
	contextSwaps int
	accelBusy    float64

	// Optional registry-backed instruments (nil-safe when Telemetry is
	// unset; latHist is always live).
	queueDelayHist *telemetry.Histogram
	queuedGauge    *telemetry.Gauge
	execGauge      *telemetry.Gauge
	gaugeEvents    bool // schedule phase-gauge events (Telemetry attached)
}

// New builds a simulator. The workload must not be nil.
func New(cfg Config, wl Workload) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if wl == nil {
		return nil, errors.New("sim: nil workload")
	}
	s := &Sim{cfg: cfg, wl: wl}
	if reg := cfg.Telemetry; reg != nil {
		var err error
		if s.latHist, err = reg.Histogram("sim_request_latency_cycles", "request latency, arrival to completion, host cycles"); err != nil {
			return nil, err
		}
		if s.queueDelayHist, err = reg.Histogram("sim_queue_delay_cycles", "accelerator queuing delay per offload, host cycles"); err != nil {
			return nil, err
		}
		if s.queuedGauge, err = reg.Gauge("sim_accel_queued", "offloads waiting for an accelerator server"); err != nil {
			return nil, err
		}
		if s.execGauge, err = reg.Gauge("sim_accel_executing", "offloads executing on accelerator servers"); err != nil {
			return nil, err
		}
		s.gaugeEvents = true
	} else {
		s.latHist = telemetry.NewHistogram("sim_request_latency_cycles", "")
	}
	for i := 0; i < cfg.Cores; i++ {
		s.idleCores = append(s.idleCores, i)
	}
	if cfg.Accel != nil {
		s.accelFree = make([]float64, cfg.Accel.Servers)
	}
	if cfg.Arrivals != nil {
		if times := cfg.Arrivals.Times; len(times) > 0 {
			// Explicit schedule (trace replay): copy so a caller mutating
			// its slice cannot perturb the run.
			if len(times) < cfg.Requests {
				return nil, fmt.Errorf("sim: arrival schedule covers %d requests, run needs %d", len(times), cfg.Requests)
			}
			s.arrivalTimes = append([]float64(nil), times[:cfg.Requests]...)
		} else {
			// Pre-draw the Poisson arrival times so paired A/B runs see the
			// same offered stream.
			rng := dist.NewRand(cfg.Arrivals.Seed)
			cyclesPerArrival := cfg.HostHz / cfg.Arrivals.RatePerSec
			s.arrivalTimes = make([]float64, cfg.Requests)
			at := 0.0
			for i := range s.arrivalTimes {
				at += rng.ExpFloat64() * cyclesPerArrival
				s.arrivalTimes[i] = at
			}
		}
	}
	return s, nil
}

// Run executes the simulation to completion and returns the measurements.
func (s *Sim) Run() (Result, error) {
	for i := 0; i < s.cfg.Threads; i++ {
		th := &thread{id: i}
		if !s.assignNextRequest(th) {
			break
		}
		s.readyQ = append(s.readyQ, th)
	}
	s.dispatch()

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at < s.now {
			return Result{}, fmt.Errorf("sim: time went backwards (%v < %v)", e.at, s.now)
		}
		s.now = e.at
		e.fn()
	}

	if s.completed < s.cfg.Requests {
		return Result{}, fmt.Errorf("sim: deadlock: completed %d of %d requests", s.completed, s.cfg.Requests)
	}
	res := Result{
		Completed:     s.completed,
		ElapsedCycles: s.now,
		Offloads:      s.offloads,
		ContextSwaps:  s.contextSwaps,
		AccelBusy:     s.accelBusy,
	}
	if s.now > 0 {
		res.ThroughputQPS = float64(s.completed) / (s.now / s.cfg.HostHz)
	}
	snap := s.latHist.Snapshot()
	res.LatencyHistogram = snap
	if snap.Count > 0 {
		res.MeanLatency = snap.Mean()
		res.P50Latency = snap.Quantile(0.5)
		res.P95Latency = snap.Quantile(0.95)
		res.P99Latency = snap.Quantile(0.99)
		res.P999Latency = snap.Quantile(0.999)
		res.MaxLatency = snap.Max
	}
	if s.offloads > 0 {
		res.MeanQueueDelay = s.queueDelay / float64(s.offloads)
	}
	return res, nil
}

// schedule queues fn to run at time at.
func (s *Sim) schedule(at float64, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// assignNextRequest points the thread at the next workload request; false
// when the target count is exhausted.
func (s *Sim) assignNextRequest(th *thread) bool {
	if s.nextReq >= s.cfg.Requests {
		th.reqIndex = -1
		return false
	}
	th.reqIndex = s.nextReq
	s.nextReq++
	th.segCursor = 0
	th.asyncDone = 0
	th.inFlight = false
	th.arrival = 0
	if s.arrivalTimes != nil {
		th.arrival = s.arrivalTimes[th.reqIndex]
	}
	return true
}

// dispatch hands ready threads to idle cores at the current time.
func (s *Sim) dispatch() {
	for len(s.idleCores) > 0 && len(s.readyQ) > 0 {
		th := s.readyQ[0]
		s.readyQ = s.readyQ[1:]
		coreID := s.idleCores[len(s.idleCores)-1]
		s.idleCores = s.idleCores[:len(s.idleCores)-1]
		s.runOnCore(coreID, th)
	}
}

// freeCore returns a core to the idle pool and dispatches pending threads.
func (s *Sim) freeCore(coreID int) {
	s.idleCores = append(s.idleCores, coreID)
	s.dispatch()
}

// runOnCore executes th on coreID from the current simulation time until
// the thread blocks (Sync-OS) or finishes its current request; in the
// latter case a continuation event keeps the thread on the core for its
// next request, yielding to the event loop so concurrent threads interleave
// in time order.
func (s *Sim) runOnCore(coreID int, th *thread) {
	now := s.now
	// A thread resuming after an offload block pays the switch-in cost —
	// the second o1 of the model's 2·o1 per Sync-OS offload (the first is
	// charged at the switch-away when the thread blocked).
	if th.woke {
		th.woke = false
		now += s.cfg.ContextSwitch
		s.contextSwaps++
	}

	if th.reqIndex < 0 {
		s.freeCore(coreID)
		return
	}
	if !th.inFlight && th.arrival > now {
		// Open loop: the next request has not arrived yet; release the
		// core and come back at the arrival time.
		s.freeCore(coreID)
		s.schedule(th.arrival, func() {
			s.readyQ = append(s.readyQ, th)
			s.dispatch()
		})
		return
	}
	req := s.wl.Request(th.reqIndex)
	if !th.inFlight {
		th.inFlight = true
		th.reqStart = now
		th.procStart = now
		if s.arrivalTimes != nil {
			// The latency clock starts at arrival, including any wait for
			// a free thread.
			th.reqStart = th.arrival
		}
		now += req.NonKernelCycles
	}

	for th.segCursor < len(req.Kernels) {
		inv := req.Kernels[th.segCursor]
		th.segCursor++
		if s.cfg.Accel == nil || (s.cfg.Accel.SelectiveMinG > 0 && inv.Bytes < s.cfg.Accel.SelectiveMinG) {
			now += inv.HostCycles // execute on the host
			continue
		}
		completion, blocks := s.offloadAt(th, inv, &now)
		if blocks {
			// Sync-OS: the thread blocks awaiting the response. The core
			// pays the switch-away o1 before the next thread can run, and
			// the blocked thread pays the switch-in o1 when re-dispatched.
			s.contextSwaps++
			s.schedule(now+s.cfg.ContextSwitch, func() { s.freeCore(coreID) })
			wake := completion
			if wake < now {
				wake = now
			}
			s.schedule(wake, func() {
				th.woke = true
				s.readyQ = append(s.readyQ, th)
				s.dispatch()
			})
			return
		}
	}

	// Request complete; determine its latency endpoint.
	end := now
	if s.cfg.Accel != nil {
		switch s.cfg.Accel.Threading {
		case core.AsyncSameThread, core.AsyncDistinctThread:
			if th.asyncDone > end {
				end = th.asyncDone
			}
		case core.AsyncNoResponse:
			// Off-chip: the accelerator's execution stays in the request's
			// latency (eqn 8); remote moves it to the application's
			// end-to-end latency instead (eqn 6).
			if s.cfg.Accel.Strategy != core.Remote && th.asyncDone > end {
				end = th.asyncDone
			}
		}
	}
	s.completed++
	s.latHist.Record(end - th.reqStart)
	if s.cfg.Observer != nil {
		s.cfg.Observer(ObservedRequest{
			Index:   th.reqIndex,
			Arrival: th.reqStart,
			Start:   th.procStart,
			End:     end,
		})
	}

	if s.assignNextRequest(th) {
		// Yield to the event loop between requests so concurrent cores
		// interleave; the thread keeps its core (no switch charge).
		s.schedule(now, func() { s.runOnCore(coreID, th) })
		return
	}
	s.schedule(now, func() { s.freeCore(coreID) })
}

// offloadAt dispatches one kernel invocation to the accelerator at *now,
// advancing *now by the host-side costs. For Sync, *now advances across
// the accelerator's execution (the core waits). Sync-OS reports blocks =
// true with the completion time. Async designs record the completion on
// the thread and return immediately.
func (s *Sim) offloadAt(th *thread, inv Invocation, now *float64) (completion float64, blocks bool) {
	a := s.cfg.Accel
	*now += a.O0 + a.L
	svc := inv.HostCycles / a.A

	best := 0
	for i, t := range s.accelFree {
		if t < s.accelFree[best] {
			best = i
		}
	}
	grant := *now
	if s.accelFree[best] > grant {
		grant = s.accelFree[best]
	}
	q := grant - *now
	s.accelFree[best] = grant + svc
	s.offloads++
	s.queueDelay += q
	s.accelBusy += svc
	completion = grant + svc
	s.queueDelayHist.Record(q)
	if s.gaugeEvents {
		// Trace the offload's phases in simulated-time order. These events
		// only touch gauges, never simulation state, so telemetry cannot
		// perturb the run.
		s.queuedGauge.Add(1)
		grantAt, doneAt := grant, completion
		s.schedule(grantAt, func() {
			s.queuedGauge.Add(-1)
			s.execGauge.Add(1)
		})
		s.schedule(doneAt, func() { s.execGauge.Add(-1) })
	}

	switch a.Threading {
	case core.Sync:
		*now = completion
		return completion, false
	case core.SyncOS:
		return completion, true
	case core.AsyncDistinctThread:
		// A dedicated response thread burns one switch per response.
		*now += s.cfg.ContextSwitch
		s.contextSwaps++
		fallthrough
	case core.AsyncSameThread, core.AsyncNoResponse:
		if completion > th.asyncDone {
			th.asyncDone = completion
		}
		return completion, false
	default:
		return completion, false
	}
}
