package sim

import (
	"math"
	"testing"

	"repro/internal/core"
)

func openLoopConfig(rate float64, accel *Accel) Config {
	return Config{
		Cores: 2, Threads: 2, HostHz: 1e9, Requests: 4000,
		Arrivals: &Arrivals{RatePerSec: rate, Seed: 9},
		Accel:    accel,
	}
}

func TestArrivalsValidate(t *testing.T) {
	if err := (Arrivals{RatePerSec: 100}).Validate(); err != nil {
		t.Errorf("valid arrivals: %v", err)
	}
	for _, rate := range []float64{0, -1, math.Inf(1)} {
		if err := (Arrivals{RatePerSec: rate}).Validate(); err == nil {
			t.Errorf("rate %v: want error", rate)
		}
	}
	cfg := openLoopConfig(0, nil)
	if err := cfg.Validate(); err == nil {
		t.Error("invalid arrivals in config: want error")
	}
}

// At light load an open-loop run completes everything, latency is close to
// the bare service time, and throughput equals the offered rate.
func TestOpenLoopLightLoad(t *testing.T) {
	wl := UniformWorkload{NonKernelCycles: 10000}    // 10 µs at 1 GHz
	res := runSim(t, openLoopConfig(10000, nil), wl) // ρ = 0.1 over 2 cores
	if res.Completed != 4000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if math.Abs(res.ThroughputQPS-10000) > 500 {
		t.Errorf("throughput = %v, want ~offered 10000", res.ThroughputQPS)
	}
	if res.MeanLatency < 10000 || res.MeanLatency > 11000 {
		t.Errorf("mean latency = %v, want ~service time 10000", res.MeanLatency)
	}
}

// As offered load approaches saturation, queueing inflates the tail far
// more than the mean — the classic open-loop latency curve.
func TestOpenLoopTailGrowsWithLoad(t *testing.T) {
	wl := UniformWorkload{NonKernelCycles: 10000}
	light := runSim(t, openLoopConfig(20000, nil), wl)  // ρ = 0.1
	heavy := runSim(t, openLoopConfig(170000, nil), wl) // ρ = 0.85
	if !(heavy.MeanLatency > light.MeanLatency) {
		t.Errorf("mean latency should grow with load: %v vs %v", light.MeanLatency, heavy.MeanLatency)
	}
	if !(heavy.P99Latency > 2*light.P99Latency) {
		t.Errorf("P99 should inflate near saturation: %v vs %v", light.P99Latency, heavy.P99Latency)
	}
	lightTail := light.P99Latency / light.MeanLatency
	heavyTail := heavy.P99Latency / heavy.MeanLatency
	if !(heavyTail > lightTail) {
		t.Errorf("tail/mean ratio should widen under load: %v vs %v", lightTail, heavyTail)
	}
}

// Latency includes the wait for a free thread: with one thread and bursts,
// P99 exceeds the service time substantially even at moderate load.
func TestOpenLoopLatencyIncludesQueueWait(t *testing.T) {
	wl := UniformWorkload{NonKernelCycles: 10000}
	res := runSim(t, Config{
		Cores: 1, Threads: 1, HostHz: 1e9, Requests: 4000,
		Arrivals: &Arrivals{RatePerSec: 70000, Seed: 3}, // ρ = 0.7
	}, wl)
	if !(res.P99Latency > 3*10000) {
		t.Errorf("P99 = %v, want well above the 10k service time (queueing)", res.P99Latency)
	}
}

// Acceleration shifts the whole latency-vs-load curve: at identical offered
// load, the accelerated instance has lower mean and P99 latency.
func TestOpenLoopAccelerationLowersLatency(t *testing.T) {
	wl := UniformWorkload{
		NonKernelCycles: 6000,
		KernelsPerReq:   1,
		KernelBytes:     800,
		Kernel:          core.LinearKernel(5), // 4000 kernel cycles
	}
	const rate = 140000 // ρ = 0.7 at 10k cycles/request over 2 cores
	base := runSim(t, openLoopConfig(rate, nil), wl)
	acc := runSim(t, openLoopConfig(rate, &Accel{
		Threading: core.Sync, Strategy: core.OnChip, A: 8, Servers: 4,
	}), wl)
	if !(acc.MeanLatency < base.MeanLatency) {
		t.Errorf("accelerated mean %v should beat baseline %v", acc.MeanLatency, base.MeanLatency)
	}
	if !(acc.P99Latency < base.P99Latency) {
		t.Errorf("accelerated P99 %v should beat baseline %v", acc.P99Latency, base.P99Latency)
	}
}

// Paired A/B open-loop runs see identical arrival streams.
func TestOpenLoopDeterministicArrivals(t *testing.T) {
	wl := UniformWorkload{NonKernelCycles: 5000}
	a := runSim(t, openLoopConfig(50000, nil), wl)
	b := runSim(t, openLoopConfig(50000, nil), wl)
	if a.MeanLatency != b.MeanLatency || a.ElapsedCycles != b.ElapsedCycles { //modelcheck:ignore floatcmp — determinism check: same seed must agree bit-exactly
		t.Error("same seed produced different open-loop runs")
	}
}
