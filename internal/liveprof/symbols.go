package liveprof

import (
	"strings"

	"repro/internal/trace"
)

// Symbol → leaf-frame mapping: the measured analog of the paper's leaf
// function categorization (§2.2, Table 2). Strobelight tags each sampled
// leaf function with a category; here real Go symbols from a parsed CPU
// profile are mapped onto the repository's "domain.function" frame
// convention so profiler.LeafTagger applies the exact same category rules
// to measured profiles as to synthetic traces.
//
// The scan is leaf-first: the innermost frame with a known mapping defines
// the leaf category, mirroring how a hardware PC sample attributes to the
// function actually executing. Frames with no mapping (application logic,
// test harness, runtime plumbing we don't classify) are skipped, and a
// stack where nothing matches buckets to Miscellaneous — the paper's
// category for non-tax cycles.

// symRule maps symbols matching a prefix or substring to a leaf frame.
type symRule struct {
	prefix   string // match: symbol starts with prefix …
	contains string // … or contains this substring (either may be empty)
	frame    trace.Frame
}

// symRules is ordered: first match wins within a frame. More specific
// rules precede broader ones (e.g. runtime hash helpers before the generic
// crypto rules, math/rand before math).
var symRules = []symRule{
	// Memory: the Table 2 Memory leaf (Fig 3 functions).
	{prefix: "runtime.memmove", frame: "mem.copy"},
	{prefix: "runtime.typedmemmove", frame: "mem.copy"},
	{prefix: "runtime.memclr", frame: "mem.set"},
	{prefix: "runtime.memequal", frame: "mem.compare"},
	{prefix: "runtime.cmpstring", frame: "mem.compare"},
	{prefix: "runtime.mallocgc", frame: "mem.alloc"},
	{prefix: "runtime.newobject", frame: "mem.alloc"},
	{prefix: "runtime.makeslice", frame: "mem.alloc"},
	{prefix: "runtime.growslice", frame: "mem.alloc"},
	{prefix: "runtime.makemap", frame: "mem.alloc"},
	{prefix: "runtime.rawstring", frame: "mem.alloc"},
	{prefix: "runtime.mapassign", frame: "mem.alloc"},
	{contains: "gcBgMarkWorker", frame: "mem.free"},
	{contains: "gcDrain", frame: "mem.free"},
	{contains: "gcAssist", frame: "mem.free"},
	{prefix: "runtime.bgsweep", frame: "mem.free"},
	{prefix: "runtime.sweepone", frame: "mem.free"},
	{prefix: "runtime.(*mcentral)", frame: "mem.free"},
	{prefix: "runtime.(*mheap)", frame: "mem.free"},
	{prefix: "runtime.(*mcache)", frame: "mem.alloc"},

	// Hashing — before crypto/AES rules so runtime.aeshash* (map hashing)
	// lands here, and before the sync rules so hash/maphash isn't shadowed.
	{prefix: "runtime.aeshash", frame: "hash.map"},
	{prefix: "runtime.memhash", frame: "hash.map"},
	{prefix: "runtime.strhash", frame: "hash.map"},
	{contains: "sha256", frame: "hash.sha256"},
	{contains: "sha512", frame: "hash.other"},
	{contains: "sha1", frame: "hash.other"},
	{contains: "md5", frame: "hash.other"},
	{prefix: "hash/", frame: "hash.crc"},

	// SSL: AES/CTR symmetric crypto on the IO path. Go ≥1.24 implements
	// crypto/aes inside crypto/internal/fips140/aes, so match the package
	// path segment rather than the façade package.
	{contains: "/aes", frame: "ssl.aes"},
	{prefix: "crypto/cipher", frame: "ssl.cipher"},
	{prefix: "crypto/subtle", frame: "ssl.cipher"},
	{prefix: "crypto/", frame: "ssl.cipher"},

	// ZSTD (the paper's compression leaf; this repo's codec is DEFLATE).
	{contains: "flate.(*decompressor)", frame: "zstd.decompress"},
	{contains: "flate.(*huffmanDecoder)", frame: "zstd.decompress"},
	{prefix: "compress/", frame: "zstd.compress"},

	// Synchronization (Fig 6 functions).
	{prefix: "sync/atomic.", frame: "sync.atomics"},
	{contains: "internal/runtime/atomic", frame: "sync.atomics"},
	{contains: "runtime/internal/atomic", frame: "sync.atomics"},
	{prefix: "sync.", frame: "sync.mutex"},
	{prefix: "runtime.lock", frame: "sync.mutex"},
	{prefix: "runtime.unlock", frame: "sync.mutex"},
	{prefix: "runtime.futex", frame: "sync.mutex"},
	{prefix: "runtime.sema", frame: "sync.mutex"},
	{prefix: "runtime.mutex", frame: "sync.mutex"},
	{prefix: "runtime.chan", frame: "sync.mutex"},
	{prefix: "runtime.send", frame: "sync.mutex"},
	{prefix: "runtime.recv", frame: "sync.mutex"},
	{prefix: "runtime.selectgo", frame: "sync.mutex"},
	{prefix: "runtime.procyield", frame: "sync.spin"},
	{prefix: "runtime.osyield", frame: "sync.spin"},
	{prefix: "runtime.cas", frame: "sync.cas"},

	// Math — rand is a library utility, not FP math, so it precedes.
	{prefix: "math/rand", frame: "clib.stdalgo"},
	{prefix: "math/bits", frame: "math.int"},
	{prefix: "math.", frame: "math.fp"},

	// Kernel-mediated work (Fig 5 families): syscalls, scheduling, network
	// polling, timers.
	{prefix: "syscall.", frame: "kernel.sys"},
	{prefix: "internal/poll", frame: "kernel.net"},
	{prefix: "runtime.netpoll", frame: "kernel.net"},
	{prefix: "runtime.epoll", frame: "kernel.net"},
	{prefix: "net.", frame: "kernel.net"},
	{prefix: "runtime.schedule", frame: "kernel.sched"},
	{prefix: "runtime.findRunnable", frame: "kernel.sched"},
	{prefix: "runtime.findrunnable", frame: "kernel.sched"},
	{prefix: "runtime.mcall", frame: "kernel.sched"},
	{prefix: "runtime.park_m", frame: "kernel.sched"},
	{prefix: "runtime.goschedImpl", frame: "kernel.sched"},
	{prefix: "runtime.stealWork", frame: "kernel.sched"},
	{prefix: "runtime.wakep", frame: "kernel.sched"},
	{prefix: "runtime.startm", frame: "kernel.sched"},
	{prefix: "runtime.usleep", frame: "kernel.sched"},
	{prefix: "runtime.morestack", frame: "kernel.sched"},
	{prefix: "runtime.newstack", frame: "kernel.sched"},
	{prefix: "runtime.nanotime", frame: "kernel.event"},
	{prefix: "runtime.walltime", frame: "kernel.event"},
	{prefix: "time.now", frame: "kernel.event"},
	{prefix: "time.Now", frame: "kernel.event"},
	{prefix: "os.", frame: "kernel.sys"},

	// C-library-equivalent standard library work (Fig 7 families).
	{prefix: "sort.", frame: "clib.stdalgo"},
	{prefix: "slices.", frame: "clib.stdalgo"},
	{prefix: "maps.", frame: "clib.hashtable"},
	{prefix: "container/", frame: "clib.trees"},
	{prefix: "fmt.", frame: "clib.strings"},
	{prefix: "strconv.", frame: "clib.strings"},
	{prefix: "strings.", frame: "clib.strings"},
	{prefix: "unicode", frame: "clib.strings"},
	{prefix: "bytes.", frame: "clib.strings"},
	{prefix: "encoding/", frame: "clib.stdalgo"},

	// The repository's own kernels: when a sample lands in the wrapper
	// itself (prologue, bounds checks) rather than the runtime/stdlib leaf
	// it calls, attribute it to the kernel's category directly.
	{prefix: "repro/internal/kernels.Copy", frame: "mem.copy"},
	{prefix: "repro/internal/kernels.Set", frame: "mem.set"},
	{prefix: "repro/internal/kernels.Compare", frame: "mem.compare"},
	{prefix: "repro/internal/kernels.Hash", frame: "hash.sha256"},
	{prefix: "repro/internal/kernels.Compress", frame: "zstd.compress"},
	{prefix: "repro/internal/kernels.Decompress", frame: "zstd.decompress"},
	{prefix: "repro/internal/kernels.(*Cipher)", frame: "ssl.aes"},
	{prefix: "repro/internal/kernels.(*Arena).Alloc", frame: "mem.alloc"},
	{prefix: "repro/internal/kernels.(*Arena).Free", frame: "mem.free"},
}

// MiscFrame is the frame assigned when no symbol in a stack maps to a
// known leaf domain; the LeafTagger buckets it to Miscellaneous.
const MiscFrame = trace.Frame("misc.app")

// mapSymbol returns the leaf frame for one symbol and whether any rule
// matched.
func mapSymbol(sym string) (trace.Frame, bool) {
	for _, r := range symRules {
		if r.prefix != "" && strings.HasPrefix(sym, r.prefix) {
			return r.frame, true
		}
		if r.contains != "" && strings.Contains(sym, r.contains) {
			return r.frame, true
		}
	}
	return "", false
}

// LeafFrame maps a resolved call stack (leaf-first, as pprofx returns it)
// to the repository leaf frame of its innermost recognizable function,
// falling back to MiscFrame when nothing matches.
func LeafFrame(stack []string) trace.Frame {
	for _, sym := range stack {
		if f, ok := mapSymbol(sym); ok {
			return f
		}
	}
	return MiscFrame
}
