// Package liveprof closes the loop between the repository's calibrated
// model and real execution: it collects a CPU profile of the running fleet
// with pprof labels enabled, parses it with internal/pprofx, and attributes
// the sampled cycles to the paper's Table 2 leaf categories and Table 3
// functionality categories using the same profiler rules the synthetic
// pipeline uses. The result is a *measured* per-service breakdown,
// comparable number-for-number against the calibrated fleetdata weights —
// the reproduction's stand-in for pointing Strobelight (§2.2) at
// production hosts and checking the model against it.
package liveprof

import (
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/fleetdata"
	"repro/internal/pprofx"
	"repro/internal/profiler"
	"repro/internal/proflabel"
	"repro/internal/textchart"
	"repro/internal/trace"
)

// Collect runs f under CPU profiling with attribution labels enabled and
// returns the parsed profile. hz > 0 requests a non-default sampling rate
// (the runtime's default is 100 Hz; short collection windows want more —
// the rate must be set before profiling starts, which makes the runtime
// print one benign "cannot set cpu profile rate" notice to stderr).
// Collect is not reentrant: the runtime supports one CPU profile at a
// time, and a concurrent profile makes it fail cleanly.
func Collect(hz int, f func()) (*pprofx.Profile, error) {
	raw, err := CollectBytes(hz, f)
	if err != nil {
		return nil, err
	}
	return pprofx.Parse(raw)
}

// CollectBytes is Collect without the parse step: it returns the raw
// gzipped profile.proto bytes, for callers that also want to persist the
// profile for offline `go tool pprof` inspection.
func CollectBytes(hz int, f func()) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("liveprof: nil collect function")
	}
	proflabel.Enable()
	defer proflabel.Disable()

	if hz > 0 {
		runtime.SetCPUProfileRate(hz)
	}
	var buf writerBuffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		if hz > 0 {
			runtime.SetCPUProfileRate(0)
		}
		return nil, fmt.Errorf("liveprof: start profile: %w", err)
	}
	f()
	pprof.StopCPUProfile()
	return buf.data, nil
}

// writerBuffer is a minimal io.Writer accumulating the profile bytes.
type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// ServiceAttribution is the measured breakdown for one labeled service.
type ServiceAttribution struct {
	Service  string
	CPUNanos int64
	// Functionality is the measured Table 3 breakdown (percent of the
	// service's labeled cycles).
	Functionality fleetdata.Breakdown
	// Leaf is the measured Table 2 breakdown (percent of the service's
	// labeled cycles, by symbol-mapped leaf category).
	Leaf fleetdata.Breakdown
}

// Attribution aggregates a parsed profile by service label.
type Attribution struct {
	// Services maps service label values to their measured breakdowns.
	Services map[string]*ServiceAttribution
	// TotalCPUNanos counts all samples in the profile; LabeledCPUNanos
	// counts only those carrying a service label (the coverage ratio says
	// how much of the process the instrumentation explains).
	TotalCPUNanos   int64
	LabeledCPUNanos int64
}

// Coverage returns the fraction of profiled CPU time carrying a service
// label, in [0, 1].
func (a *Attribution) Coverage() float64 {
	if a.TotalCPUNanos <= 0 {
		return 0
	}
	return float64(a.LabeledCPUNanos) / float64(a.TotalCPUNanos)
}

// Service returns the attribution for a service label, or nil.
func (a *Attribution) Service(name string) *ServiceAttribution {
	return a.Services[name]
}

// Attribute buckets a parsed CPU profile's labeled samples into measured
// Table 2 and Table 3 breakdowns per service, applying the identical
// profiler rules (LeafTagger domains, FunctionalityBucketer markers) the
// synthetic pipeline uses — only the sample source differs.
func Attribute(p *pprofx.Profile) (*Attribution, error) {
	cpuIdx, err := p.ValueIndex("cpu")
	if err != nil {
		return nil, err
	}
	tagger := profiler.NewLeafTagger()
	bucketer := profiler.NewFunctionalityBucketer()

	type totals struct {
		cpu  int64
		fn   map[string]int64
		leaf map[string]int64
	}
	perSvc := make(map[string]*totals)
	out := &Attribution{Services: make(map[string]*ServiceAttribution)}

	// Marker stacks are tiny and repeated; build each once.
	markerStacks := make(map[string]trace.Stack)
	for _, s := range p.Samples {
		if cpuIdx >= len(s.Values) {
			continue
		}
		ns := s.Values[cpuIdx]
		out.TotalCPUNanos += ns
		svc := s.Labels[proflabel.KeyService]
		if svc == "" {
			continue
		}
		out.LabeledCPUNanos += ns
		t := perSvc[svc]
		if t == nil {
			t = &totals{fn: make(map[string]int64), leaf: make(map[string]int64)}
			perSvc[svc] = t
		}
		t.cpu += ns

		// Table 3: the functionality label is the measured equivalent of
		// the synthetic traces' func.* marker frame; unlabeled or unknown
		// markers fall through to the bucketer's Miscellaneous fallback.
		marker := s.Labels[proflabel.KeyFunctionality]
		stack, ok := markerStacks[marker]
		if !ok {
			if marker != "" {
				stack = trace.Stack{trace.Frame("func." + marker)}
			}
			markerStacks[marker] = stack
		}
		t.fn[bucketer.Bucket(stack)] += ns

		// Table 2: innermost recognizable symbol defines the leaf category.
		t.leaf[tagger.Tag(LeafFrame(s.Stack))] += ns
	}

	for svc, t := range perSvc {
		sa := &ServiceAttribution{
			Service:       svc,
			CPUNanos:      t.cpu,
			Functionality: make(fleetdata.Breakdown, len(t.fn)),
			Leaf:          make(fleetdata.Breakdown, len(t.leaf)),
		}
		for cat, ns := range t.fn {
			sa.Functionality[cat] = 100 * float64(ns) / float64(t.cpu)
		}
		for cat, ns := range t.leaf {
			sa.Leaf[cat] = 100 * float64(ns) / float64(t.cpu)
		}
		out.Services[svc] = sa
	}
	return out, nil
}

// CategoryDrift is one category's measured-vs-calibrated comparison.
type CategoryDrift struct {
	Category   string  `json:"category"`
	Measured   float64 `json:"measured_pct"`
	Calibrated float64 `json:"calibrated_pct"`
	Delta      float64 `json:"delta_pct"` // measured − calibrated
}

// Drift compares one service's measured functionality breakdown against
// its calibrated fleetdata weights.
type Drift struct {
	Service    string          `json:"service"`
	CPUNanos   int64           `json:"cpu_nanos"`
	Categories []CategoryDrift `json:"categories"`
	MaxAbs     float64         `json:"max_abs_delta_pct"`
	MeanAbs    float64         `json:"mean_abs_delta_pct"`
	// TopMatch reports whether the measured ranking reproduces the
	// calibrated top-3 categories (with tie tolerance; see TopKContained).
	TopMatch bool `json:"top3_rank_match"`
}

// CompareFunctionality builds the drift report for one measured service
// against its calibrated Table 3 weights.
func CompareFunctionality(sa *ServiceAttribution) (*Drift, error) {
	if sa == nil {
		return nil, fmt.Errorf("liveprof: nil service attribution")
	}
	calibrated := fleetdata.FunctionalityBreakdowns[fleetdata.Service(sa.Service)]
	if len(calibrated) == 0 {
		return nil, fmt.Errorf("liveprof: no calibrated functionality breakdown for service %q", sa.Service)
	}
	return newDrift(sa.Service, sa.CPUNanos, sa.Functionality, calibrated), nil
}

// CompareLeaf builds the drift report for one measured service's Table 2
// leaf breakdown against its calibrated fleetdata weights.
func CompareLeaf(sa *ServiceAttribution) (*Drift, error) {
	if sa == nil {
		return nil, fmt.Errorf("liveprof: nil service attribution")
	}
	calibrated := fleetdata.LeafBreakdowns[fleetdata.Service(sa.Service)]
	if len(calibrated) == 0 {
		return nil, fmt.Errorf("liveprof: no calibrated leaf breakdown for service %q", sa.Service)
	}
	return newDrift(sa.Service, sa.CPUNanos, sa.Leaf, calibrated), nil
}

func newDrift(service string, cpuNanos int64, measured, calibrated fleetdata.Breakdown) *Drift {
	d := &Drift{Service: service, CPUNanos: cpuNanos}

	// Union of categories, ordered by calibrated share descending (the
	// calibrated order is the paper's presentation order).
	seen := make(map[string]bool, len(calibrated))
	for _, cat := range calibrated.Categories() {
		seen[cat] = true
		d.Categories = append(d.Categories, CategoryDrift{
			Category:   cat,
			Measured:   measured.Share(cat),
			Calibrated: calibrated.Share(cat),
		})
	}
	extra := make([]string, 0, 2)
	for cat := range measured {
		if !seen[cat] {
			extra = append(extra, cat)
		}
	}
	sort.Strings(extra)
	for _, cat := range extra {
		d.Categories = append(d.Categories, CategoryDrift{
			Category: cat,
			Measured: measured.Share(cat),
		})
	}

	for i := range d.Categories {
		c := &d.Categories[i]
		c.Delta = c.Measured - c.Calibrated
		abs := c.Delta
		if abs < 0 {
			abs = -abs
		}
		if abs > d.MaxAbs {
			d.MaxAbs = abs
		}
		d.MeanAbs += abs
	}
	if n := len(d.Categories); n > 0 {
		d.MeanAbs /= float64(n)
	}
	d.TopMatch = TopKContained(measured, calibrated, 3, 2.0)
	return d
}

// TopKContained reports whether every one of calibrated's top-k categories
// ranks within measured's top k, counting measured categories within tol
// percentage points of the k-th measured value as tied for k-th place.
// The tolerance keeps the check meaningful when a service's calibrated
// weights place two categories within sampling noise of each other.
func TopKContained(measured, calibrated fleetdata.Breakdown, k int, tol float64) bool {
	calTop := calibrated.Categories()
	if len(calTop) > k {
		calTop = calTop[:k]
	}
	meas := measured.Categories()
	if len(meas) == 0 {
		return false
	}
	// Threshold: the k-th highest measured share (or the lowest, for
	// fewer than k measured categories) minus the tie tolerance.
	idx := k - 1
	if idx >= len(meas) {
		idx = len(meas) - 1
	}
	threshold := measured.Share(meas[idx]) - tol
	for _, cat := range calTop {
		if measured.Share(cat) < threshold {
			return false
		}
	}
	return true
}

// WriteText renders the drift report as an aligned textchart table with a
// signed drift bar per category, suitable for experiment logs.
func (d *Drift) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: measured vs calibrated (top-3 rank match: %v)\n",
		d.Service, d.TopMatch); err != nil {
		return err
	}
	tbl := textchart.NewTable("category", "measured", "calibrated", "drift", "")
	for _, c := range d.Categories {
		tbl.AddRow(c.Category,
			fmt.Sprintf("%5.1f%%", c.Measured),
			fmt.Sprintf("%5.1f%%", c.Calibrated),
			fmt.Sprintf("%+5.1f", c.Delta),
			driftBar(c.Delta))
	}
	if _, err := io.WriteString(w, tbl.Render()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "max |drift| %.1f pts, mean |drift| %.1f pts\n", d.MaxAbs, d.MeanAbs)
	return err
}

// driftBar renders a signed magnitude bar: '<' for measured below
// calibrated, '>' for above, one glyph per 2 percentage points (cap 15).
func driftBar(delta float64) string {
	n := int(delta / 2)
	glyph := byte('>')
	if n < 0 {
		n, glyph = -n, '<'
	}
	if n > 15 {
		n = 15
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = glyph
	}
	return string(b)
}
