package liveprof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/fleetdata"
)

// ServiceReport pairs one service's measured Table 3 and Table 2 drift
// reports.
type ServiceReport struct {
	Service       string `json:"service"`
	Functionality *Drift `json:"functionality"`
	Leaf          *Drift `json:"leaf"`
}

// Report is the full measured-vs-calibrated comparison for one collected
// profile: per-service drift for every labeled service that has calibrated
// weights, plus label coverage of the whole profile.
type Report struct {
	TotalCPUNanos   int64           `json:"total_cpu_nanos"`
	LabeledCPUNanos int64           `json:"labeled_cpu_nanos"`
	CoveragePct     float64         `json:"labeled_coverage_pct"`
	Services        []ServiceReport `json:"services"`
	// Skipped lists service label values with no calibrated breakdown
	// (test harnesses, ad-hoc labels); their samples count toward coverage
	// but produce no drift rows.
	Skipped []string `json:"skipped_labels,omitempty"`
}

// BuildReport compares every attributed service against its calibrated
// weights. Services without calibrated fleetdata weights are listed in
// Skipped rather than failing the report.
func BuildReport(a *Attribution) (*Report, error) {
	if a == nil {
		return nil, fmt.Errorf("liveprof: nil attribution")
	}
	r := &Report{
		TotalCPUNanos:   a.TotalCPUNanos,
		LabeledCPUNanos: a.LabeledCPUNanos,
		CoveragePct:     100 * a.Coverage(),
	}
	names := make([]string, 0, len(a.Services))
	for name := range a.Services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sa := a.Services[name]
		if len(fleetdata.FunctionalityBreakdowns[fleetdata.Service(name)]) == 0 {
			r.Skipped = append(r.Skipped, name)
			continue
		}
		fn, err := CompareFunctionality(sa)
		if err != nil {
			return nil, err
		}
		leaf, err := CompareLeaf(sa)
		if err != nil {
			return nil, err
		}
		r.Services = append(r.Services, ServiceReport{Service: name, Functionality: fn, Leaf: leaf})
	}
	return r, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path ("-" means stdout).
func (r *Report) WriteJSONFile(path string) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("liveprof: %w", err)
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteText renders the full report as textchart tables: per service, the
// Table 3 functionality drift then the Table 2 leaf drift.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "live CPU attribution: %.1f%% of %.0fms profiled CPU carried service labels\n",
		r.CoveragePct, float64(r.TotalCPUNanos)/1e6); err != nil {
		return err
	}
	for _, sr := range r.Services {
		if _, err := fmt.Fprintf(w, "\n[Table 3] "); err != nil {
			return err
		}
		if err := sr.Functionality.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\n[Table 2] "); err != nil {
			return err
		}
		if err := sr.Leaf.WriteText(w); err != nil {
			return err
		}
	}
	if len(r.Skipped) > 0 {
		if _, err := fmt.Fprintf(w, "\nskipped labels without calibrated weights: %v\n", r.Skipped); err != nil {
			return err
		}
	}
	return nil
}
