package liveprof_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleetdata"
	"repro/internal/liveprof"
	"repro/internal/pprofx"
	"repro/internal/services"
	"repro/internal/trace"
)

func TestLeafFrame(t *testing.T) {
	cases := []struct {
		stack []string
		want  trace.Frame
	}{
		{[]string{"runtime.memmove", "main.f"}, "mem.copy"},
		{[]string{"runtime.memclrNoHeapPointers"}, "mem.set"},
		{[]string{"runtime.mallocgc", "runtime.makeslice"}, "mem.alloc"},
		{[]string{"runtime.gcBgMarkWorker.func2"}, "mem.free"},
		{[]string{"crypto/internal/fips140/aes.ctrBlocks8", "crypto/cipher.(*ctr).XORKeyStream"}, "ssl.aes"},
		{[]string{"crypto/sha256.block"}, "hash.sha256"},
		{[]string{"runtime.aeshash64"}, "hash.map"},
		{[]string{"compress/flate.(*compressor).deflate"}, "zstd.compress"},
		{[]string{"compress/flate.(*decompressor).huffmanBlock"}, "zstd.decompress"},
		{[]string{"sync.(*Mutex).Lock"}, "sync.mutex"},
		{[]string{"sync/atomic.AddUint64"}, "sync.atomics"},
		{[]string{"runtime.chansend1"}, "sync.mutex"},
		{[]string{"math.Sqrt"}, "math.fp"},
		{[]string{"math/rand.Float64"}, "clib.stdalgo"},
		{[]string{"syscall.Syscall6"}, "kernel.sys"},
		{[]string{"runtime.netpollblock"}, "kernel.net"},
		{[]string{"fmt.Fprintf", "main.log"}, "clib.strings"},
		{[]string{"sort.Ints"}, "clib.stdalgo"},
		// Leaf-first: the innermost mapped symbol wins even when outer
		// frames would also match.
		{[]string{"runtime.memmove", "crypto/sha256.Sum256"}, "mem.copy"},
		// Unmapped leaf, mapped caller: walk outward.
		{[]string{"main.helper", "compress/flate.(*compressor).deflate"}, "zstd.compress"},
		// Nothing recognizable.
		{[]string{"main.main", "repro/internal/services.burnPrediction"}, liveprof.MiscFrame},
		{nil, liveprof.MiscFrame},
	}
	for _, tc := range cases {
		if got := liveprof.LeafFrame(tc.stack); got != tc.want {
			t.Errorf("LeafFrame(%v) = %s, want %s", tc.stack, got, tc.want)
		}
	}
}

// synthetic builds a profile with hand-placed labels covering the
// attribution branches.
func synthetic() *pprofx.Profile {
	web := func(fn string) map[string]string {
		m := map[string]string{"service": "Web"}
		if fn != "" {
			m["functionality"] = fn
		}
		return m
	}
	return &pprofx.Profile{
		SampleTypes: []pprofx.ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		Samples: []pprofx.Sample{
			{Stack: []string{"runtime.memmove", "main.f"}, Values: []int64{4, 40}, Labels: web("ioprep")},
			{Stack: []string{"crypto/internal/fips140/aes.ctrBlocks8"}, Values: []int64{3, 30}, Labels: web("io")},
			{Stack: []string{"main.app"}, Values: []int64{2, 20}, Labels: web("misc")},
			{Stack: []string{"main.app2"}, Values: []int64{1, 10}, Labels: web("")},
			{Stack: []string{"main.unlabeled"}, Values: []int64{5, 100}},
		},
	}
}

func TestAttributeSynthetic(t *testing.T) {
	a, err := liveprof.Attribute(synthetic())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCPUNanos != 200 || a.LabeledCPUNanos != 100 {
		t.Fatalf("total/labeled = %d/%d, want 200/100", a.TotalCPUNanos, a.LabeledCPUNanos)
	}
	if c := a.Coverage(); math.Abs(c-0.5) > 1e-9 {
		t.Fatalf("coverage = %v, want 0.5", c)
	}
	web := a.Service("Web")
	if web == nil {
		t.Fatal("no Web attribution")
	}
	if web.CPUNanos != 100 {
		t.Fatalf("Web CPU = %d, want 100", web.CPUNanos)
	}
	wantFn := map[string]float64{
		fleetdata.FuncIOPrePost: 40,
		fleetdata.FuncIO:        30,
		fleetdata.FuncMisc:      30, // "misc" marker + missing marker both fall back
	}
	for cat, want := range wantFn {
		if got := web.Functionality.Share(cat); math.Abs(got-want) > 1e-9 {
			t.Errorf("functionality %q = %v, want %v", cat, got, want)
		}
	}
	wantLeaf := map[string]float64{
		fleetdata.LeafMemory: 40,
		fleetdata.LeafSSL:    30,
		fleetdata.LeafMisc:   30,
	}
	for cat, want := range wantLeaf {
		if got := web.Leaf.Share(cat); math.Abs(got-want) > 1e-9 {
			t.Errorf("leaf %q = %v, want %v", cat, got, want)
		}
	}
}

func TestAttributeRequiresCPUDimension(t *testing.T) {
	p := &pprofx.Profile{SampleTypes: []pprofx.ValueType{{Type: "samples", Unit: "count"}}}
	if _, err := liveprof.Attribute(p); err == nil {
		t.Fatal("Attribute without a cpu dimension should fail")
	}
}

func TestCompareFunctionalityDrift(t *testing.T) {
	sa := &liveprof.ServiceAttribution{
		Service:  string(fleetdata.Cache2),
		CPUNanos: 1000,
		// Calibrated Cache2: IO 52, IOPrePost 21, AppLogic 18, Ser 4, TP 4, Misc 1.
		Functionality: fleetdata.Breakdown{
			fleetdata.FuncIO:        50,
			fleetdata.FuncIOPrePost: 25,
			fleetdata.FuncAppLogic:  15,
			fleetdata.FuncMisc:      10,
		},
	}
	d, err := liveprof.CompareFunctionality(sa)
	if err != nil {
		t.Fatal(err)
	}
	if !d.TopMatch {
		t.Error("top-3 should match")
	}
	var io *liveprof.CategoryDrift
	for i := range d.Categories {
		if d.Categories[i].Category == fleetdata.FuncIO {
			io = &d.Categories[i]
		}
	}
	if io == nil || math.Abs(io.Delta-(-2)) > 1e-9 {
		t.Fatalf("IO drift = %+v, want delta -2", io)
	}
	if d.MaxAbs < 9-1e-9 {
		t.Errorf("MaxAbs = %v, want >= 9 (Misc drifted +9)", d.MaxAbs)
	}

	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"measured", "calibrated", fleetdata.FuncIO} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	if _, err := liveprof.CompareFunctionality(nil); err == nil {
		t.Error("nil attribution should fail")
	}
	if _, err := liveprof.CompareFunctionality(&liveprof.ServiceAttribution{Service: "nope"}); err == nil {
		t.Error("unknown service should fail")
	}
}

func TestTopKContained(t *testing.T) {
	cal := fleetdata.Breakdown{"a": 50, "b": 30, "c": 15, "d": 5}
	if !liveprof.TopKContained(fleetdata.Breakdown{"a": 45, "b": 35, "c": 15, "d": 5}, cal, 3, 2) {
		t.Error("exact top-3 should match")
	}
	// c (calibrated 3rd) measured well below the measured 3rd place.
	if liveprof.TopKContained(fleetdata.Breakdown{"a": 45, "b": 35, "d": 18, "c": 2}, cal, 3, 2) {
		t.Error("c displaced by 16 points should not match")
	}
	// c within tolerance of 3rd place counts as tied.
	if !liveprof.TopKContained(fleetdata.Breakdown{"a": 45, "b": 34, "d": 11, "c": 10}, cal, 3, 2) {
		t.Error("c within tie tolerance should match")
	}
	if liveprof.TopKContained(fleetdata.Breakdown{}, cal, 3, 2) {
		t.Error("empty measured should not match")
	}
}

func TestBuildReportJSONAndText(t *testing.T) {
	a, err := liveprof.Attribute(synthetic())
	if err != nil {
		t.Fatal(err)
	}
	// Add an uncalibrated label to exercise Skipped.
	a.Services["harness"] = &liveprof.ServiceAttribution{Service: "harness", CPUNanos: 1}
	r, err := liveprof.BuildReport(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Services) != 1 || r.Services[0].Service != "Web" {
		t.Fatalf("report services = %+v, want [Web]", r.Services)
	}
	if len(r.Skipped) != 1 || r.Skipped[0] != "harness" {
		t.Fatalf("skipped = %v, want [harness]", r.Skipped)
	}
	if r.Services[0].Functionality == nil || r.Services[0].Leaf == nil {
		t.Fatal("report missing functionality or leaf drift")
	}

	path := filepath.Join(t.TempDir(), "drift.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back liveprof.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.CoveragePct != r.CoveragePct || len(back.Services) != 1 { //modelcheck:ignore floatcmp — JSON round-trip must reproduce the value bit-exactly
		t.Fatalf("round-tripped report mismatch: %+v", back)
	}

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[Table 3]", "[Table 2]", "Web", "harness"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("report text missing %q", want)
		}
	}

	if err := r.WriteJSONFile(filepath.Join(t.TempDir(), "no/such/dir.json")); err == nil {
		t.Error("WriteJSONFile to a missing directory should fail")
	}
	if _, err := liveprof.BuildReport(nil); err == nil {
		t.Error("BuildReport(nil) should fail")
	}
}

// TestLiveAttributionEndToEnd is the acceptance check for the live
// pipeline: run two services' real burners under CPU profiling, parse the
// profile with pprofx, attribute by label, and require the measured
// functionality breakdown to rank the same top-3 categories as the
// calibrated fleetdata weights. Cache1 and Cache2 are used because their
// calibrated top-3 are well separated from fourth place, keeping the check
// robust to sampling noise (the burner's wall-time budgeting keeps shares
// stable under -race and loaded machines).
func TestLiveAttributionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live profiling run in -short mode")
	}
	targets := []fleetdata.Service{fleetdata.Cache1, fleetdata.Cache2}
	burn := time.Duration(1200) * time.Millisecond

	profile, err := liveprof.Collect(500, func() {
		for _, name := range targets {
			s, err := services.New(name)
			if err != nil {
				t.Errorf("New(%s): %v", name, err)
				return
			}
			if _, err := s.Burn(context.Background(), services.BurnConfig{Duration: burn, Seed: 42}); err != nil {
				t.Errorf("Burn(%s): %v", name, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	a, err := liveprof.Attribute(profile)
	if err != nil {
		t.Fatalf("Attribute: %v", err)
	}
	if cov := a.Coverage(); cov < 0.3 {
		t.Errorf("label coverage %.2f, want >= 0.3 of profiled CPU", cov)
	}

	for _, name := range targets {
		sa := a.Service(string(name))
		if sa == nil {
			t.Fatalf("no attribution for %s (services: %v)", name, len(a.Services))
		}
		d, err := liveprof.CompareFunctionality(sa)
		if err != nil {
			t.Fatal(err)
		}
		if !d.TopMatch {
			var text bytes.Buffer
			_ = d.WriteText(&text) //modelcheck:ignore errdrop — bytes.Buffer writes cannot fail
			t.Errorf("%s: measured top-3 does not rank the calibrated top-3:\n%s", name, text.String())
		}
	}

	// The drift report must emit as both JSON and textchart.
	r, err := liveprof.BuildReport(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "live_drift.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back liveprof.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("emitted drift JSON invalid: %v", err)
	}
	if len(back.Services) < len(targets) {
		t.Fatalf("drift JSON covers %d services, want >= %d", len(back.Services), len(targets))
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "[Table 3]") || !strings.Contains(text.String(), string(fleetdata.Cache1)) {
		t.Errorf("drift textchart incomplete:\n%s", text.String())
	}
	t.Logf("live attribution report:\n%s", text.String())
}

func TestCollectNilFunc(t *testing.T) {
	if _, err := liveprof.Collect(0, nil); err == nil {
		t.Fatal("Collect(nil) should fail")
	}
}
