package cpuarch

import (
	"math"
	"testing"
)

func TestLookupAllGenerations(t *testing.T) {
	for _, g := range Generations {
		p, err := Lookup(g)
		if err != nil {
			t.Fatalf("Lookup(%v): %v", g, err)
		}
		if p.Gen != g {
			t.Errorf("platform %v reports gen %v", g, p.Gen)
		}
		if p.SMT != 2 {
			t.Errorf("%v SMT = %d, want 2 (Table 1)", g, p.SMT)
		}
		if p.CacheBlockSize != 64 {
			t.Errorf("%v cache block = %d, want 64", g, p.CacheBlockSize)
		}
		if p.L1I != 32*KiB || p.L1D != 32*KiB {
			t.Errorf("%v L1 = %d/%d, want 32 KiB each", g, p.L1I, p.L1D)
		}
		if p.BusyHz <= 0 {
			t.Errorf("%v BusyHz = %v", g, p.BusyHz)
		}
	}
	if _, err := Lookup(Generation(99)); err == nil {
		t.Error("unknown generation: want error")
	}
}

func TestTable1Attributes(t *testing.T) {
	a := MustLookup(GenA)
	if a.Microarch != "Intel Haswell" || a.MaxCores() != 12 || a.L2 != 256*KiB || a.LLCVariants[0] != 30*MiB {
		t.Errorf("GenA = %+v", a)
	}
	b := MustLookup(GenB)
	if b.Microarch != "Intel Broadwell" || b.MaxCores() != 16 || b.L2 != 256*KiB || b.LLCVariants[0] != 24*MiB {
		t.Errorf("GenB = %+v", b)
	}
	c := MustLookup(GenC)
	if c.Microarch != "Intel Skylake" || c.MaxCores() != 20 || c.L2 != 1*MiB {
		t.Errorf("GenC = %+v", c)
	}
	if len(c.CoreVariants) != 2 || c.CoreVariants[0] != 18 || c.CoreVariants[1] != 20 {
		t.Errorf("GenC core variants = %v, want [18 20]", c.CoreVariants)
	}
	if len(c.LLCVariants) != 2 {
		t.Errorf("GenC LLC variants = %v, want two (24.75 and 27 MiB)", c.LLCVariants)
	}
	if c.LLCVariants[0] != 24*MiB+768*KiB {
		t.Errorf("GenC LLC[0] = %d, want 24.75 MiB", c.LLCVariants[0])
	}
}

func TestHardwareThreads(t *testing.T) {
	if got := MustLookup(GenC).HardwareThreads(); got != 40 {
		t.Errorf("GenC hardware threads = %d, want 40", got)
	}
	if got := MustLookup(GenA).HardwareThreads(); got != 24 {
		t.Errorf("GenA hardware threads = %d, want 24", got)
	}
}

func TestGenerationString(t *testing.T) {
	if GenA.String() != "GenA" || GenB.String() != "GenB" || GenC.String() != "GenC" {
		t.Error("generation names wrong")
	}
	if Generation(7).String() != "Generation(7)" {
		t.Errorf("unknown generation string = %q", Generation(7).String())
	}
}

func TestIPCTableSetAndGet(t *testing.T) {
	tbl := NewIPCTable("test")
	if err := tbl.Set("Memory", GenA, 0.8); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, err := tbl.IPC("Memory", GenA)
	if err != nil || v != 0.8 {
		t.Errorf("IPC = %v, %v", v, err)
	}
	if _, err := tbl.IPC("Memory", GenB); err == nil {
		t.Error("missing generation: want error")
	}
	if _, err := tbl.IPC("Nope", GenA); err == nil {
		t.Error("missing category: want error")
	}
}

func TestIPCTableRejectsInvalid(t *testing.T) {
	tbl := NewIPCTable("test")
	if err := tbl.Set("X", GenA, 0); err == nil {
		t.Error("zero IPC: want error")
	}
	if err := tbl.Set("X", GenA, -1); err == nil {
		t.Error("negative IPC: want error")
	}
	if err := tbl.Set("X", GenA, 4.5); err == nil {
		t.Error("IPC above theoretical peak: want error")
	}
	if err := tbl.Set("X", Generation(42), 1); err == nil {
		t.Error("unknown generation: want error")
	}
}

func TestScalingFactor(t *testing.T) {
	f, err := Cache1LeafIPC.ScalingFactor("C Libraries", GenA, GenC)
	if err != nil {
		t.Fatalf("ScalingFactor: %v", err)
	}
	if math.Abs(f-1.60/0.95) > 1e-12 {
		t.Errorf("C library scaling = %v", f)
	}
	if _, err := Cache1LeafIPC.ScalingFactor("Nope", GenA, GenC); err == nil {
		t.Error("missing category: want error")
	}
}

// The paper's Fig 8 findings: kernel IPC is low and scales poorly; C
// libraries scale well; every category is below half the peak IPC of 4.0.
func TestFig8Shape(t *testing.T) {
	for _, cat := range Cache1LeafIPC.Categories() {
		v, err := Cache1LeafIPC.IPC(cat, GenC)
		if err != nil {
			t.Fatal(err)
		}
		if v >= 2.0 {
			t.Errorf("%s GenC IPC = %v, want < half of peak 4.0", cat, v)
		}
	}
	poor, err := Cache1LeafIPC.ScalesPoorly("Kernel", 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if !poor {
		t.Error("kernel should scale poorly (<15% over two generations)")
	}
	poor, err = Cache1LeafIPC.ScalesPoorly("C Libraries", 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if poor {
		t.Error("C libraries should scale well")
	}
	kernelIPC, _ := Cache1LeafIPC.IPC("Kernel", GenC)
	for _, cat := range []string{"Memory", "ZSTD", "SSL", "C Libraries"} {
		v, _ := Cache1LeafIPC.IPC(cat, GenC)
		if v <= kernelIPC {
			t.Errorf("%s IPC %v should exceed kernel IPC %v", cat, v, kernelIPC)
		}
	}
}

// The paper's Fig 10 findings: I/O IPC stays low across generations
// (kernel-bound), and application logic sees little improvement
// (memory-bound key-value store).
func TestFig10Shape(t *testing.T) {
	io, err := Cache1FunctionalityIPC.ScalingFactor("IO", GenA, GenC)
	if err != nil {
		t.Fatal(err)
	}
	if io > 1.15 {
		t.Errorf("IO IPC scaling = %v, want flat", io)
	}
	app, err := Cache1FunctionalityIPC.ScalingFactor("Application Logic", GenA, GenC)
	if err != nil {
		t.Fatal(err)
	}
	if app > 1.15 {
		t.Errorf("application-logic IPC scaling = %v, want small", app)
	}
	for _, g := range Generations {
		v, _ := Cache1FunctionalityIPC.IPC("IO", g)
		if v >= 1.0 {
			t.Errorf("IO IPC on %v = %v, want < 1 (Fig 10 axis)", g, v)
		}
	}
}

// Generation-over-generation IPC must be monotonically non-decreasing in
// both calibrated tables: newer hardware never regresses a category.
func TestIPCMonotonicAcrossGenerations(t *testing.T) {
	for _, tbl := range []*IPCTable{Cache1LeafIPC, Cache1FunctionalityIPC} {
		for _, cat := range tbl.Categories() {
			prev := 0.0
			for _, g := range Generations {
				v, err := tbl.IPC(cat, g)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", tbl.Name(), cat, g, err)
				}
				if v < prev {
					t.Errorf("%s %s regresses at %v: %v < %v", tbl.Name(), cat, g, v, prev)
				}
				prev = v
			}
		}
	}
}

func TestCategoriesSorted(t *testing.T) {
	cats := Cache1LeafIPC.Categories()
	if len(cats) != 5 {
		t.Fatalf("got %d categories, want 5", len(cats))
	}
	for i := 1; i < len(cats); i++ {
		if cats[i-1] >= cats[i] {
			t.Errorf("categories not sorted: %v", cats)
		}
	}
}
