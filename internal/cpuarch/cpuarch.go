// Package cpuarch models the CPU platforms the paper characterizes on.
//
// Table 1 of the paper describes three server generations — GenA (Intel
// Haswell), GenB (Intel Broadwell), and GenC (Intel Skylake) — and the
// IPC-scaling studies (Figures 8 and 10) report how per-category
// instructions-per-cycle evolve across them. We cannot run on the paper's
// hardware, so this package provides parametric platform descriptions and
// per-category IPC tables calibrated to the published scaling behaviour:
// kernel IPC is low and scales poorly, C-library IPC scales well, and most
// categories see only a small GenB→GenC gain.
package cpuarch

import (
	"fmt"
	"sort"
)

// KiB and MiB express cache capacities the way Table 1 does.
const (
	KiB = 1 << 10
	MiB = 1 << 20
)

// Generation identifies one of the three CPU platforms from Table 1.
type Generation int

const (
	// GenA is the Intel Haswell platform.
	GenA Generation = iota
	// GenB is the Intel Broadwell platform.
	GenB
	// GenC is the Intel Skylake platform (18- or 20-core variants).
	GenC
)

// Generations lists all platforms in release order.
var Generations = []Generation{GenA, GenB, GenC}

// String returns the paper's name for the generation.
func (g Generation) String() string {
	switch g {
	case GenA:
		return "GenA"
	case GenB:
		return "GenB"
	case GenC:
		return "GenC"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// Platform describes one CPU platform with the attributes from Table 1 plus
// the busy-frequency figure the model's C parameter derives from.
type Platform struct {
	Gen            Generation
	Microarch      string
	CoreVariants   []int // cores per socket; GenC ships as 18- or 20-core
	SMT            int   // hardware threads per core
	CacheBlockSize int   // bytes
	L1I            int   // bytes per core
	L1D            int   // bytes per core
	L2             int   // bytes per core (private)
	LLCVariants    []int // bytes shared; GenC ships 24.75 or 27 MiB
	PeakIPC        float64
	// BusyHz is the typical busy frequency in cycles/second. The paper's
	// case studies use C (total host cycles in one second) of 2.0-2.5e9,
	// i.e. the host's busy frequency over a one-second unit.
	BusyHz float64
}

// platforms holds the Table 1 data.
var platforms = map[Generation]Platform{
	GenA: {
		Gen:            GenA,
		Microarch:      "Intel Haswell",
		CoreVariants:   []int{12},
		SMT:            2,
		CacheBlockSize: 64,
		L1I:            32 * KiB,
		L1D:            32 * KiB,
		L2:             256 * KiB,
		LLCVariants:    []int{30 * MiB},
		PeakIPC:        4.0,
		BusyHz:         2.0e9,
	},
	GenB: {
		Gen:            GenB,
		Microarch:      "Intel Broadwell",
		CoreVariants:   []int{16},
		SMT:            2,
		CacheBlockSize: 64,
		L1I:            32 * KiB,
		L1D:            32 * KiB,
		L2:             256 * KiB,
		LLCVariants:    []int{24 * MiB},
		PeakIPC:        4.0,
		BusyHz:         2.2e9,
	},
	GenC: {
		Gen:            GenC,
		Microarch:      "Intel Skylake",
		CoreVariants:   []int{18, 20},
		SMT:            2,
		CacheBlockSize: 64,
		L1I:            32 * KiB,
		L1D:            32 * KiB,
		L2:             1 * MiB,
		LLCVariants:    []int{24*MiB + 768*KiB, 27 * MiB}, // 24.75 or 27 MiB
		PeakIPC:        4.0,
		BusyHz:         2.5e9,
	},
}

// Lookup returns the platform description for a generation.
func Lookup(g Generation) (Platform, error) {
	p, ok := platforms[g]
	if !ok {
		return Platform{}, fmt.Errorf("cpuarch: unknown generation %v", g)
	}
	return p, nil
}

// MustLookup is Lookup that panics on unknown generations.
func MustLookup(g Generation) Platform {
	p, err := Lookup(g)
	if err != nil {
		panic(err)
	}
	return p
}

// MaxCores returns the largest core count the platform ships with.
func (p Platform) MaxCores() int {
	max := 0
	for _, c := range p.CoreVariants {
		if c > max {
			max = c
		}
	}
	return max
}

// HardwareThreads returns logical threads per socket for the largest
// core-count variant.
func (p Platform) HardwareThreads() int { return p.MaxCores() * p.SMT }

// IPCTable maps a profiling category name to its per-core IPC on each
// generation. Categories are free-form strings so the same machinery serves
// both the leaf-function study (Fig 8) and the functionality study (Fig 10).
type IPCTable struct {
	name string
	ipc  map[string]map[Generation]float64
}

// NewIPCTable returns an empty named table.
func NewIPCTable(name string) *IPCTable {
	return &IPCTable{name: name, ipc: make(map[string]map[Generation]float64)}
}

// Name returns the table's name.
func (t *IPCTable) Name() string { return t.name }

// Set records the IPC for a category on a generation. IPC must be positive
// and no greater than the generation's theoretical peak.
func (t *IPCTable) Set(category string, g Generation, ipc float64) error {
	p, err := Lookup(g)
	if err != nil {
		return err
	}
	if ipc <= 0 || ipc > p.PeakIPC {
		return fmt.Errorf("cpuarch: IPC %v for %q on %v out of (0, %v]", ipc, category, g, p.PeakIPC)
	}
	m, ok := t.ipc[category]
	if !ok {
		m = make(map[Generation]float64)
		t.ipc[category] = m
	}
	m[g] = ipc
	return nil
}

// IPC returns the recorded IPC for a category on a generation.
func (t *IPCTable) IPC(category string, g Generation) (float64, error) {
	m, ok := t.ipc[category]
	if !ok {
		return 0, fmt.Errorf("cpuarch: no IPC data for category %q", category)
	}
	v, ok := m[g]
	if !ok {
		return 0, fmt.Errorf("cpuarch: no IPC data for %q on %v", category, g)
	}
	return v, nil
}

// Categories returns the category names in sorted order.
func (t *IPCTable) Categories() []string {
	out := make([]string, 0, len(t.ipc))
	for c := range t.ipc {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ScalingFactor returns IPC(to)/IPC(from) for a category — the
// generation-over-generation improvement the paper's scaling figures show.
func (t *IPCTable) ScalingFactor(category string, from, to Generation) (float64, error) {
	a, err := t.IPC(category, from)
	if err != nil {
		return 0, err
	}
	b, err := t.IPC(category, to)
	if err != nil {
		return 0, err
	}
	return b / a, nil
}

// ScalesPoorly reports whether a category's GenA→GenC IPC improvement falls
// below the given threshold ratio (e.g. 1.15 for "<15% gain over two
// generations"). The paper flags kernel and key-value-store IPC this way.
func (t *IPCTable) ScalesPoorly(category string, threshold float64) (bool, error) {
	f, err := t.ScalingFactor(category, GenA, GenC)
	if err != nil {
		return false, err
	}
	return f < threshold, nil
}

// mustTable builds a table from a category→[GenA, GenB, GenC] map, panicking
// on invalid entries; for the package-level calibrated tables below.
func mustTable(name string, rows map[string][3]float64) *IPCTable {
	t := NewIPCTable(name)
	for cat, v := range rows {
		for i, g := range Generations {
			if err := t.Set(cat, g, v[i]); err != nil {
				panic(err)
			}
		}
	}
	return t
}

// Cache1LeafIPC is the Fig 8 dataset: Cache1's per-core IPC for key leaf
// function categories across the three generations. Values are calibrated
// to the published shape: every category is below half the theoretical
// peak of 4.0, kernel IPC is low and nearly flat, C libraries scale well,
// and the GenB→GenC step is small for most categories.
var Cache1LeafIPC = mustTable("Cache1 leaf IPC (Fig 8)", map[string][3]float64{
	"Memory":      {0.80, 0.95, 1.00},
	"Kernel":      {0.48, 0.52, 0.54},
	"ZSTD":        {1.00, 1.15, 1.20},
	"SSL":         {1.15, 1.35, 1.42},
	"C Libraries": {0.95, 1.30, 1.60},
})

// Cache1FunctionalityIPC is the Fig 10 dataset: Cache1's per-core IPC for
// key microservice functionality categories. I/O IPC stays low across
// generations (it is dominated by kernel functions), and application logic
// (the key-value store) sees little improvement because it is memory bound.
var Cache1FunctionalityIPC = mustTable("Cache1 functionality IPC (Fig 10)", map[string][3]float64{
	"IO":                {0.35, 0.37, 0.38},
	"IO Pre/Post":       {0.50, 0.56, 0.60},
	"Serialization":     {0.55, 0.65, 0.70},
	"Application Logic": {0.48, 0.51, 0.53},
})
