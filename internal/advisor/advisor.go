// Package advisor automates the paper's Table 4: given a service's
// measured functionality and leaf breakdowns (from the profiler) and its
// offload-size distributions, it detects the findings the paper calls out
// — dominant orchestration, heavy memory copies, expensive frees, high
// kernel share with poor IPC scaling, logging overheads, frequent
// synchronization — and attaches the corresponding acceleration
// opportunity, each with an Accelerometer-projected speedup where a
// quantitative projection is possible.
package advisor

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
)

// Severity ranks how much a finding matters for the service.
type Severity int

const (
	// Info marks a present-but-minor overhead.
	Info Severity = iota
	// Notable marks a meaningful optimization opportunity.
	Notable
	// Critical marks a dominant overhead.
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Notable:
		return "notable"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Recommendation is one detected finding with its opportunity.
type Recommendation struct {
	Finding     string
	Opportunity string
	Severity    Severity
	// SharePct is the cycle share that triggered the finding.
	SharePct float64
	// ProjectedSpeedupPct is the Accelerometer-projected gain for the
	// suggested acceleration, when quantifiable (0 otherwise).
	ProjectedSpeedupPct float64
}

// Input bundles what the advisor analyzes. Leaf and functionality shares
// come from profiler breakdowns; IPCScaling optionally maps leaf categories
// to their GenA→GenC IPC improvement factors.
type Input struct {
	Service       fleetdata.Service
	Functionality []profiler.Share
	Leaf          []profiler.Share
	MemoryLeaf    []profiler.Share // Fig 3-style sub-breakdown (of memory cycles)
	IPCScaling    map[string]float64
	// HostCycles is C for projections (cycles per second); defaults to
	// 2.5e9 when zero.
	HostCycles float64
}

// thresholds for the findings, in percent of total cycles.
const (
	orchestrationCritical = 60.0
	ioHigh                = 30.0
	compressionHigh       = 5.0
	loggingHigh           = 10.0
	kernelHigh            = 15.0
	memoryHigh            = 20.0
	syncHigh              = 8.0
	threadPoolHigh        = 5.0
	freeShareHigh         = 20.0 // of memory cycles
	ipcPoorScaling        = 1.15
)

// Analyze produces recommendations sorted by severity (descending) then
// share.
func Analyze(in Input) ([]Recommendation, error) {
	if !in.Service.Valid() {
		return nil, fmt.Errorf("advisor: unknown service %q", in.Service)
	}
	if len(in.Functionality) == 0 || len(in.Leaf) == 0 {
		return nil, fmt.Errorf("advisor: need functionality and leaf breakdowns")
	}
	c := in.HostCycles
	if c <= 0 {
		c = 2.5e9
	}

	var recs []Recommendation
	add := func(r Recommendation) { recs = append(recs, r) }

	// Orchestration dominance (the paper's headline finding).
	appLogic := profiler.ShareOf(in.Functionality, fleetdata.FuncAppLogic) +
		profiler.ShareOf(in.Functionality, fleetdata.FuncPrediction)
	orch := 100 - appLogic
	if orch >= orchestrationCritical {
		add(Recommendation{
			Finding: fmt.Sprintf("orchestration work consumes %.0f%% of cycles; core application logic only %.0f%%", orch, appLogic),
			Opportunity: "accelerate the orchestration (I/O, serialization, compression) rather than " +
				"only the application logic — the Amdahl bound on app-logic acceleration is " +
				fmt.Sprintf("%.2fx", 1/(1-appLogic/100)),
			Severity: Critical,
			SharePct: orch,
		})
	}

	// I/O-heavy services: kernel-bypass style RPC optimizations.
	if io := profiler.ShareOf(in.Functionality, fleetdata.FuncIO); io >= ioHigh {
		add(Recommendation{
			Finding:     fmt.Sprintf("I/O sends/receives consume %.0f%% of cycles", io),
			Opportunity: "RPC optimizations: kernel-bypass networking, multi-queue NICs, I/O coalescing",
			Severity:    Critical,
			SharePct:    io,
		})
	}

	// Compression: quantify with the Table 7-style on-chip projection.
	if comp := profiler.ShareOf(in.Functionality, fleetdata.FuncCompression); comp >= compressionHigh {
		m, err := core.New(core.Params{C: c, Alpha: comp / 100, N: 0, A: 5})
		if err != nil {
			return nil, err
		}
		pct, err := m.SpeedupPercent(core.Sync)
		if err != nil {
			return nil, err
		}
		add(Recommendation{
			Finding:             fmt.Sprintf("compression consumes %.0f%% of cycles", comp),
			Opportunity:         "dedicated compression hardware (on-chip preferred; off-chip can share an encryption device)",
			Severity:            Notable,
			SharePct:            comp,
			ProjectedSpeedupPct: pct,
		})
	}

	// Logging (the Web finding).
	if logs := profiler.ShareOf(in.Functionality, fleetdata.FuncLogging); logs >= loggingHigh {
		add(Recommendation{
			Finding:     fmt.Sprintf("reading and updating logs consumes %.0f%% of cycles", logs),
			Opportunity: "reduce log size or update frequency; few systems optimize logging",
			Severity:    Critical,
			SharePct:    logs,
		})
	}

	// Thread-pool management.
	if tp := profiler.ShareOf(in.Functionality, fleetdata.FuncThreadPool); tp >= threadPoolHigh {
		add(Recommendation{
			Finding:     fmt.Sprintf("thread pool management consumes %.0f%% of cycles", tp),
			Opportunity: "intelligent thread scheduling and pool tuning",
			Severity:    Notable,
			SharePct:    tp,
		})
	}

	// Kernel share and IPC scaling.
	if kern := profiler.ShareOf(in.Leaf, fleetdata.LeafKernel); kern >= kernelHigh {
		sev := Notable
		finding := fmt.Sprintf("kernel functions consume %.0f%% of cycles", kern)
		if f, ok := in.IPCScaling[fleetdata.LeafKernel]; ok && f < ipcPoorScaling {
			sev = Critical
			finding += fmt.Sprintf(" and kernel IPC scaled only %.2fx over two CPU generations", f)
		}
		add(Recommendation{
			Finding:     finding,
			Opportunity: "coalesce I/O, user-space drivers, in-line accelerators, kernel-bypass",
			Severity:    sev,
			SharePct:    kern,
		})
	}

	// Memory: copies and frees.
	if mem := profiler.ShareOf(in.Leaf, fleetdata.LeafMemory); mem >= memoryHigh {
		copyShare := profiler.ShareOf(in.MemoryLeaf, fleetdata.MemCopy)
		m, err := core.New(core.Params{C: c, Alpha: mem / 100 * copyShare / 100, N: 0, A: 4})
		if err != nil {
			return nil, err
		}
		pct, err := m.SpeedupPercent(core.Sync)
		if err != nil {
			return nil, err
		}
		add(Recommendation{
			Finding: fmt.Sprintf("memory functions consume %.0f%% of cycles (%.0f%% of them copies)",
				mem, copyShare),
			Opportunity:         "dense SIMD copies, in-DRAM bulk copy, I/O DMA engines, processing in memory",
			Severity:            Critical,
			SharePct:            mem,
			ProjectedSpeedupPct: pct,
		})
		if free := profiler.ShareOf(in.MemoryLeaf, fleetdata.MemFree); free >= freeShareHigh {
			add(Recommendation{
				Finding: fmt.Sprintf("memory frees consume %.0f%% of memory cycles (size-class lookups cache poorly)", free),
				Opportunity: "sized delete (skip the size-class lookup), faster free paths, " +
					"hardware support for page removal",
				Severity: Notable,
				SharePct: mem * free / 100,
			})
		}
	}

	// Synchronization.
	if syn := profiler.ShareOf(in.Leaf, fleetdata.LeafSync); syn >= syncHigh {
		add(Recommendation{
			Finding:     fmt.Sprintf("synchronization consumes %.0f%% of cycles", syn),
			Opportunity: "thread-pool tuning, transactional memory, I/O coalescing, spin/block hybrids",
			Severity:    Notable,
			SharePct:    syn,
		})
	}

	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Severity != recs[j].Severity {
			return recs[i].Severity > recs[j].Severity
		}
		return recs[i].SharePct > recs[j].SharePct
	})
	return recs, nil
}
