package advisor

import (
	"strings"
	"testing"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
	"repro/internal/services"
)

// inputFor builds an advisor input from a synthesized service's profile,
// the way cmd/characterize would.
func inputFor(t *testing.T, name fleetdata.Service) Input {
	t.Helper()
	s, err := services.New(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	scaling := map[string]float64{}
	for _, cat := range cpuarch.Cache1LeafIPC.Categories() {
		if f, err := cpuarch.Cache1LeafIPC.ScalingFactor(cat, cpuarch.GenA, cpuarch.GenC); err == nil {
			scaling[cat] = f
		}
	}
	return Input{
		Service:       name,
		Functionality: p.FunctionalityBreakdown(profiler.NewFunctionalityBucketer()),
		Leaf:          p.LeafBreakdown(profiler.NewLeafTagger()),
		MemoryLeaf:    p.LeafFunctionBreakdown("mem", profiler.MemoryLabels, "Other"),
		IPCScaling:    scaling,
	}
}

func findRec(recs []Recommendation, substr string) *Recommendation {
	for i := range recs {
		if strings.Contains(recs[i].Finding, substr) {
			return &recs[i]
		}
	}
	return nil
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Input{Service: "Nope"}); err == nil {
		t.Error("unknown service: want error")
	}
	if _, err := Analyze(Input{Service: fleetdata.Web}); err == nil {
		t.Error("missing breakdowns: want error")
	}
}

// Web's Table 4 findings: dominant orchestration, heavy logging, heavy
// memory (copies).
func TestAnalyzeWeb(t *testing.T) {
	recs, err := Analyze(inputFor(t, fleetdata.Web))
	if err != nil {
		t.Fatal(err)
	}
	orch := findRec(recs, "orchestration work")
	if orch == nil || orch.Severity != Critical {
		t.Errorf("Web should have a critical orchestration finding: %+v", recs)
	}
	logging := findRec(recs, "logs")
	if logging == nil {
		t.Fatal("Web should flag its 23% logging overhead")
	}
	if logging.SharePct < 22.5 || logging.SharePct > 23.5 {
		t.Errorf("logging share = %v, want ~23", logging.SharePct)
	}
	mem := findRec(recs, "memory functions")
	if mem == nil {
		t.Fatal("Web should flag its 37% memory share")
	}
	if mem.ProjectedSpeedupPct <= 0 {
		t.Error("memory finding should carry a projected speedup")
	}
}

// Cache1's findings: I/O heavy, kernel heavy with poor IPC scaling,
// synchronization heavy, expensive frees.
func TestAnalyzeCache1(t *testing.T) {
	recs, err := Analyze(inputFor(t, fleetdata.Cache1))
	if err != nil {
		t.Fatal(err)
	}
	io := findRec(recs, "I/O sends")
	if io == nil || io.Severity != Critical {
		t.Errorf("Cache1 should have a critical I/O finding")
	}
	kern := findRec(recs, "kernel functions")
	if kern == nil {
		t.Fatal("Cache1 should flag kernel share")
	}
	if kern.Severity != Critical || !strings.Contains(kern.Finding, "IPC scaled only") {
		t.Errorf("Cache1 kernel finding should note poor IPC scaling: %+v", kern)
	}
	if findRec(recs, "synchronization") == nil {
		t.Error("Cache1 should flag its 19% synchronization share")
	}
	free := findRec(recs, "memory frees")
	if free == nil {
		t.Error("Cache1 should flag expensive frees (32% of memory cycles)")
	}
}

// Feed1: compression finding with a quantified projection.
func TestAnalyzeFeed1Compression(t *testing.T) {
	recs, err := Analyze(inputFor(t, fleetdata.Feed1))
	if err != nil {
		t.Fatal(err)
	}
	comp := findRec(recs, "compression consumes")
	if comp == nil {
		t.Fatal("Feed1 should flag its 15% compression share")
	}
	// On-chip A=5 on a 15% kernel: 1/(0.85+0.03) → ~13.6%.
	if comp.ProjectedSpeedupPct < 13 || comp.ProjectedSpeedupPct > 14 {
		t.Errorf("compression projection = %v%%, want ~13.6%%", comp.ProjectedSpeedupPct)
	}
}

// Recommendations come sorted critical-first.
func TestAnalyzeSorted(t *testing.T) {
	recs, err := Analyze(inputFor(t, fleetdata.Cache2))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("Cache2 should produce several recommendations, got %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Severity > recs[i-1].Severity {
			t.Errorf("recommendations not sorted by severity: %v after %v",
				recs[i].Severity, recs[i-1].Severity)
		}
	}
}

// A service with tiny overheads yields no spurious findings.
func TestAnalyzeQuietService(t *testing.T) {
	in := Input{
		Service: fleetdata.Ads2,
		Functionality: []profiler.Share{
			{Category: fleetdata.FuncAppLogic, Percent: 50},
			{Category: fleetdata.FuncPrediction, Percent: 45},
			{Category: fleetdata.FuncIO, Percent: 5},
		},
		Leaf: []profiler.Share{
			{Category: fleetdata.LeafMath, Percent: 90},
			{Category: fleetdata.LeafCLib, Percent: 10},
		},
	}
	recs, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("quiet service produced findings: %+v", recs)
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Notable.String() != "notable" || Critical.String() != "critical" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity must render")
	}
}
