package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/record"
	"repro/internal/tailtrace"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Tail-tax regression: the retry-storm scenario replays through the
// two-tier graph in virtual time with span emission on, and the
// quantile-sliced critical-path attribution (mean/p50/p99/p999 split
// into work vs queueing, plus per-tier shares) must match the golden
// byte-for-byte for both the baseline and accelerated arms. The storm
// is the scenario where the slices diverge: its bursts overrun the two
// virtual workers, so the p99/p999 rows are dominated by queue time
// that barely registers at p50 — the table is pinned precisely because
// that divergence is the observation the tracing subsystem exists for.
//
//	UPDATE_SCENARIOS=1 go test -run TestTailTaxGolden .

// tailTaxGolden is one arm's pinned attribution table.
type tailTaxGolden struct {
	Baseline *tailtrace.Report `json:"baseline"`
	Accel    *tailtrace.Report `json:"accel"`
}

func tailTaxReport(t *testing.T, g *topology.Graph, tr *record.Trace, accel *topology.AccelConfig) *tailtrace.Report {
	t.Helper()
	cfg := topologyScenarioConfig(accel)
	cfg.EmitSpans = true
	res, err := topology.Simulate(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := topology.Simulate(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Spans, again.Spans) {
		t.Fatal("two simulations emitted different spans")
	}
	// Every emitted trace must assemble rooted and attribute exactly:
	// the categories partition the root span with zero residue in
	// virtual time.
	trees := tailtrace.Assemble(res.Spans)
	if len(trees) != len(tr.Events) {
		t.Fatalf("assembled %d trees from %d arrivals", len(trees), len(tr.Events))
	}
	for _, tree := range trees {
		if tree.Rootless {
			t.Fatalf("trace %d lost its root", tree.TraceID)
		}
		tax := tailtrace.Attribute(tree)
		var sum int64
		for _, d := range tax.ByCategory {
			sum += int64(d)
		}
		if sum != int64(tax.Total) {
			t.Fatalf("trace %d: attribution %d != root %d", tree.TraceID, sum, int64(tax.Total))
		}
	}
	return tailtrace.Analyze(res.Spans, tailtrace.Options{})
}

func TestTailTaxGolden(t *testing.T) {
	g, err := topology.ParseSpecFile(filepath.Join(topologyGoldenDir, "two-tier.topo"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := record.ReadFile(scenarioTracePath("retry-storm"))
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
	}

	got := tailTaxGolden{
		Baseline: tailTaxReport(t, g, tr, nil),
		Accel:    tailTaxReport(t, g, tr, &topology.AccelConfig{A: 8, O0: 10, L: 10}),
	}

	// Structural invariants before pinning bytes: the storm's tail must
	// be queue-dominated relative to its median in the baseline arm.
	var p50, p99 tailtrace.TaxRow
	for _, row := range got.Baseline.Rows {
		switch row.Label {
		case "p50":
			p50 = row
		case "p99":
			p99 = row
		}
	}
	if p99.Share(telemetry.CatQueue) <= p50.Share(telemetry.CatQueue) {
		t.Fatalf("retry-storm p99 queue share %.3f not above p50 %.3f — the tail tax table is not surfacing the storm",
			p99.Share(telemetry.CatQueue), p50.Share(telemetry.CatQueue))
	}

	goldenPath := filepath.Join(topologyGoldenDir, "tailtax_golden.json")
	if updateScenarios() {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
	}
	want := tailTaxGolden{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tail-tax table diverges from %s\ngot:  %+v\nwant: %+v\n(regenerate with UPDATE_SCENARIOS=1 if the attribution changed deliberately)", goldenPath, got, want)
	}
}
