#!/usr/bin/env bash
# bench_batching.sh — batched-vs-unbatched RPC throughput, captured as JSON.
#
# Runs the sub-break-even-payload Call benchmark pair from bench_test.go
# (small compressible messages where the per-exchange cost dominates) and
# writes BENCH_batching.json with ns/op, B/op, and allocs/op for each plus
# the derived per-message speedup. Fails if batching does not reach
# MIN_BATCH_SPEEDUP (default 2x) — the break-even claim the batching layer
# exists to satisfy. Override the iteration budget with BENCHTIME (default
# 200x; use e.g. BENCHTIME=2s locally for stable numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_batching.json}"
min="${MIN_BATCH_SPEEDUP:-2}"
raw="$(go test -run '^$' -bench '^BenchmarkCallSmall(Unbatched|Batched16)$' \
    -benchmem -benchtime "${BENCHTIME:-200x}" .)"
echo "$raw"

echo "$raw" | awk -v min="$min" '
/^Benchmark/ {
    # These benchmarks SetBytes, so an MB/s column shifts the layout;
    # locate each value by the unit label to its right.
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    ns[name] = nsop
    printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        (n++ ? ",\n" : ""), name, $2, nsop, bop, aop
}
BEGIN { print "[" }
END {
    if (n != 2) { print "expected 2 benchmark lines, parsed " n > "/dev/stderr"; exit 1 }
    un = ns["BenchmarkCallSmallUnbatched"]
    ba = ns["BenchmarkCallSmallBatched16"]
    if (un == "" || ba == "" || ba + 0 == 0) {
        print "missing benchmark results" > "/dev/stderr"; exit 1
    }
    speedup = un / ba
    printf ",\n  {\"name\": \"speedup_batched_over_unbatched\", \"value\": %.3f, \"min_required\": %s}\n]\n",
        speedup, min
    printf "batching speedup: %.2fx (floor %sx)\n", speedup, min > "/dev/stderr"
    if (speedup < min) {
        printf "FATAL: batched throughput %.2fx below required %sx\n", speedup, min > "/dev/stderr"
        exit 1
    }
}
' > "$out"

echo "wrote $out"
