#!/usr/bin/env bash
# bench_alloc.sh — allocation budget for the RPC hot path, captured as JSON.
#
# Runs the pooled hot-path benchmarks (unencrypted CallContext, batched
# CallBatch, and the kernel micro-benchmarks) and writes BENCH_alloc.json
# with ns/op, B/op, and allocs/op for each. Fails if the unencrypted Call
# path exceeds MAX_CALL_ALLOCS allocs/op (default 4) — the zero-allocation
# regression gate: the only steady-state allocations left on that path are
# the two payload copies the Message contract requires, so any growth means
# a pooled buffer or interned string started escaping again. Override the
# iteration budget with BENCHTIME (default 200x; use e.g. BENCHTIME=2s
# locally for stable numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_alloc.json}"
max_call_allocs="${MAX_CALL_ALLOCS:-4}"
raw="$(go test -run '^$' \
    -bench '^(BenchmarkCallDisabled|BenchmarkCallSmallBatched16|BenchmarkKernel(MemoryCopy|MemorySet|Compression|Encryption|Hashing|Allocation))' \
    -benchmem -benchtime "${BENCHTIME:-200x}" .)"
echo "$raw"

echo "$raw" | awk -v max="$max_call_allocs" '
/^Benchmark/ {
    # Kernel benchmarks SetBytes, so an MB/s column shifts the layout;
    # locate each value by the unit label to its right.
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    if (name == "BenchmarkCallDisabled") call_allocs = aop
    printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        (n++ ? ",\n" : ""), name, $2, nsop, bop, aop
}
BEGIN { print "[" }
END {
    if (n < 3) { print "expected >= 3 benchmark lines, parsed " n > "/dev/stderr"; exit 1 }
    if (call_allocs == "" || call_allocs == "null") {
        print "missing BenchmarkCallDisabled allocs/op" > "/dev/stderr"; exit 1
    }
    printf ",\n  {\"name\": \"call_allocs_budget\", \"allocs_per_op\": %s, \"max_allowed\": %s}\n]\n",
        call_allocs, max
    printf "unencrypted Call path: %s allocs/op (budget %s)\n", call_allocs, max > "/dev/stderr"
    if (call_allocs + 0 > max + 0) {
        printf "FATAL: Call path allocates %s/op, budget is %s/op\n", call_allocs, max > "/dev/stderr"
        exit 1
    }
}
' > "$out"

echo "wrote $out"
