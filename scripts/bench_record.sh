#!/usr/bin/env bash
# bench_record.sh — overhead gate for the workload flight recorder,
# captured as JSON.
#
# The recorder hooks the fleet's sim observer and the services exercise
# loop behind the same one-nil-check discipline as telemetry/proflabel:
# off must be free, on must stay cheap enough to leave running. This
# script pins both with:
#
#   - BenchmarkFleetRecorderOff  the full sharded fleet loop, no recorder
#   - BenchmarkFleetRecorderOn   the same loop with a ring recorder attached
#   - BenchmarkRecordDisabled    one Record call on a nil recorder
#   - BenchmarkRecordEnabled     one Record call into the ring
#
# Gates (each fleet benchmark runs BENCHCOUNT times, default 3; best run
# counts):
#   1. BenchmarkFleetRecorderOn ns/op must stay within MAX_OVERHEAD_PCT
#      (default 5%) of BenchmarkFleetRecorderOff.
#   2. BenchmarkRecordDisabled must report 0 allocs/op — a nil recorder
#      may not allocate, ever.
#
# Everything lands in BENCH_record.json. Override the iteration budget
# with BENCHTIME (default 0.3s; CI uses 1s).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_record.json}"
max_overhead="${MAX_OVERHEAD_PCT:-5}"
benchtime="${BENCHTIME:-0.3s}"
benchcount="${BENCHCOUNT:-3}"

raw="$(go test -run '^$' -bench '^BenchmarkFleetRecorder(Off|On)$' \
    -benchmem -benchtime "$benchtime" -count "$benchcount" ./internal/fleet)
$(go test -run '^$' -bench '^BenchmarkRecord(Disabled|Enabled)$' \
    -benchmem -benchtime "$benchtime" ./internal/record)"
echo "$raw"

echo "$raw" | awk -v max_overhead="$max_overhead" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    if (nsop == "") next
    if (!(name in best) || nsop + 0 < best[name] + 0) {
        best[name] = nsop
        bytes[name] = bop
    }
    # Allocations must hold on every run, not just the best one.
    if (!(name in allocs) || aop + 0 > allocs[name] + 0) allocs[name] = aop
    seen[name] = 1
}
END {
    if (!seen["BenchmarkFleetRecorderOff"] || !seen["BenchmarkFleetRecorderOn"]) {
        print "missing fleet recorder benchmarks in output" > "/dev/stderr"; exit 1
    }
    off = best["BenchmarkFleetRecorderOff"] + 0
    on = best["BenchmarkFleetRecorderOn"] + 0
    overhead = off > 0 ? (on - off) / off * 100 : 0
    printf "[\n"
    n = 0
    for (name in seen) {
        printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
            (n++ ? ",\n" : ""), name, best[name], bytes[name] == "" ? "null" : bytes[name],
            allocs[name] == "" ? "null" : allocs[name]
    }
    printf ",\n  {\"name\": \"recorder_overhead_gate\", \"overhead_pct\": %.3f, \"max_overhead_pct\": %s, \"disabled_allocs_per_op\": %s}\n]\n",
        overhead, max_overhead, allocs["BenchmarkRecordDisabled"]
    printf "recorder-on fleet loop: %.3f%% overhead vs recorder-off (budget %s%%), nil-recorder %s allocs/op (budget 0)\n",
        overhead, max_overhead, allocs["BenchmarkRecordDisabled"] > "/dev/stderr"
    if (allocs["BenchmarkRecordDisabled"] + 0 != 0) {
        printf "FATAL: nil-recorder Record allocates %s/op; the off switch must be allocation-free\n",
            allocs["BenchmarkRecordDisabled"] > "/dev/stderr"
        exit 1
    }
    if (overhead > max_overhead + 0) {
        printf "FATAL: recorder-on fleet loop is %.3f%% slower than recorder-off, budget %s%%\n",
            overhead, max_overhead > "/dev/stderr"
        exit 1
    }
}
' > "$out"

echo "wrote $out"
