#!/usr/bin/env bash
# bench_topology.sh — topology-driver overhead vs the flat RPC fleet,
# captured as JSON.
#
# Runs the matched benchmark pair from internal/topology/bench_test.go:
# identical spin work behind a plain rpc.Server (flat arm) and behind a
# single-node topology Runner (driver arm — client-pool checkout plus
# per-node and end-to-end histogram records on top of the same loopback
# hop). Writes BENCH_topology.json with ns/op, B/op, and allocs/op for
# each plus the derived per-request overhead. Fails if the driver costs
# more than MAX_TOPO_OVERHEAD_PCT (default 10) percent over flat — the
# telemetry layer must stay cheap enough to leave in the measured path.
# Override the iteration budget with BENCHTIME (default 300x; use e.g.
# BENCHTIME=2s locally for stable numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_topology.json}"
max="${MAX_TOPO_OVERHEAD_PCT:-10}"
raw="$(go test -run '^$' -bench '^Benchmark(FlatRPCCall|TopologyCall)$' \
    -benchmem -benchtime "${BENCHTIME:-300x}" ./internal/topology/)"
echo "$raw"

echo "$raw" | awk -v max="$max" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    ns[name] = nsop
    printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        (n++ ? ",\n" : ""), name, $2, nsop, bop, aop
}
BEGIN { print "[" }
END {
    if (n != 2) { print "expected 2 benchmark lines, parsed " n > "/dev/stderr"; exit 1 }
    flat = ns["BenchmarkFlatRPCCall"]
    topo = ns["BenchmarkTopologyCall"]
    if (flat == "" || topo == "" || flat + 0 == 0) {
        print "missing benchmark results" > "/dev/stderr"; exit 1
    }
    overhead = (topo - flat) / flat * 100
    printf ",\n  {\"name\": \"topology_overhead_pct\", \"value\": %.3f, \"max_allowed\": %s}\n]\n",
        overhead, max
    printf "topology driver overhead: %.2f%% (ceiling %s%%)\n", overhead, max > "/dev/stderr"
    if (overhead > max + 0) {
        printf "FATAL: topology per-request overhead %.2f%% above the %s%% ceiling\n", overhead, max > "/dev/stderr"
        exit 1
    }
}
' > "$out"

echo "wrote $out"
