#!/usr/bin/env bash
# bench_tailtrace.sh — tail-trace instrumentation overhead, captured as
# JSON.
#
# Runs the matched benchmark pair from internal/topology/bench_test.go:
# identical spin work through a single-node topology Runner with the
# tracer off (BenchmarkTopologyCall) and on (BenchmarkTopologyCallTraced
# — every request additionally records its span tree into the bounded
# ring), plus BenchmarkStageDisabled, the nil-Instrumentation per-stage
# path that must stay allocation-free. Writes
# BENCH_tailtrace.json with ns/op, B/op, and allocs/op for each plus the
# derived tracing overhead. Fails if tracing costs more than
# MAX_TRACE_OVERHEAD_PCT (default 5) percent per request, or if the
# nil-gated path allocates — the whole point of always-on tracing is
# that the off switch is free and the on switch is cheap.
# Override the iteration budget with BENCHTIME (default 300x; use e.g.
# BENCHTIME=2s locally for stable numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_tailtrace.json}"
max="${MAX_TRACE_OVERHEAD_PCT:-5}"
raw="$(go test -run '^$' -bench '^BenchmarkTopologyCall(Traced)?$' \
    -benchmem -benchtime "${BENCHTIME:-300x}" ./internal/topology/
go test -run '^$' -bench '^BenchmarkStageDisabled$' \
    -benchmem -benchtime "${BENCHTIME:-300x}" ./internal/rpc/)"
echo "$raw"

echo "$raw" | awk -v max="$max" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    ns[name] = nsop
    allocs[name] = aop
    printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        (n++ ? ",\n" : ""), name, $2, nsop, bop, aop
}
BEGIN { print "[" }
END {
    if (n != 3) { print "expected 3 benchmark lines, parsed " n > "/dev/stderr"; exit 1 }
    plain = ns["BenchmarkTopologyCall"]
    traced = ns["BenchmarkTopologyCallTraced"]
    if (plain == "" || traced == "" || plain + 0 == 0) {
        print "missing benchmark results" > "/dev/stderr"; exit 1
    }
    overhead = (traced - plain) / plain * 100
    printf ",\n  {\"name\": \"tailtrace_overhead_pct\", \"value\": %.3f, \"max_allowed\": %s}\n]\n",
        overhead, max
    printf "tail-trace overhead: %.2f%% (ceiling %s%%)\n", overhead, max > "/dev/stderr"
    if (allocs["BenchmarkStageDisabled"] + 0 != 0) {
        printf "FATAL: nil-gated stage path allocates (%s allocs/op, want 0)\n", allocs["BenchmarkStageDisabled"] > "/dev/stderr"
        exit 1
    }
    if (overhead > max + 0) {
        printf "FATAL: tail-trace per-request overhead %.2f%% above the %s%% ceiling\n", overhead, max > "/dev/stderr"
        exit 1
    }
}
' > "$out"

echo "wrote $out"
