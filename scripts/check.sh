#!/usr/bin/env bash
# check.sh — the standing correctness gate for this repository.
#
# Runs, in order:
#   1. go build ./...            (everything compiles)
#   2. go vet ./...              (stock static analysis)
#   3. modelcheck ./...          (domain-aware suite: floatcmp, errdrop,
#                                 paramvalidate, seedhygiene, lockcheck,
#                                 shadow, ctxcheck)
#   4. modelcheck self-test      (the suite must still flag a known-bad file)
#   5. go test -race ./...       (unit + integration tests under the race
#                                 detector; covers the concurrent rpc/sim
#                                 layers)
#   6. fuzz smoke                (each internal/rpc fuzz target runs for a
#                                 short -fuzztime beyond its checked-in
#                                 corpus; FUZZTIME overrides, default 3s)
#
# Any failure exits non-zero. CI runs exactly this script (.github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> modelcheck ./..."
go run ./cmd/modelcheck ./...

echo "==> modelcheck self-test (must flag a known-bad fixture)"
selftest="$(mktemp -d)"
trap 'rm -rf "$selftest"' EXIT
cat > "$selftest/go.mod" <<'EOF'
module selftest

go 1.22
EOF
cat > "$selftest/bad.go" <<'EOF'
package selftest

import (
	"context"
	"math/rand"
	"os"
	"sync"
)

var mu sync.Mutex

func Bad(a, b float64) bool {
	mu.Lock()
	os.Remove("x")
	return a == b && rand.Float64() > 0.5
}

func BadCtx(ctx context.Context) {
	mu.Unlock()
}
EOF
if go run ./cmd/modelcheck -C "$selftest" ./... > /dev/null 2>&1; then
    echo "FATAL: modelcheck exited 0 on a fixture with known findings" >&2
    exit 1
fi
echo "    ok: suite flags the bad fixture"

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (internal/rpc, ${FUZZTIME:-3s} per target)"
for target in FuzzReadFrame FuzzCodecRoundTrip FuzzBatchPayloadRoundTrip; do
    echo "    fuzzing $target"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime "${FUZZTIME:-3s}" ./internal/rpc > /dev/null
done

echo "==> all gates green"
