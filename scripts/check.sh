#!/usr/bin/env bash
# check.sh — the standing correctness gate for this repository.
#
# Runs, in order:
#   1. go build ./...            (everything compiles)
#   2. go vet ./...              (stock static analysis)
#   3. modelcheck -tests ./...   (domain-aware suite: floatcmp, errdrop,
#                                 paramvalidate, seedhygiene, lockcheck,
#                                 shadow, ctxcheck, poolcheck — including
#                                 _test.go files, which are covered by the
#                                 documented golden-value and teardown
#                                 exemption rules rather than annotations)
#   4. modelcheck self-test      (the suite must still flag known-bad
#                                 fixtures: a syntax-level file, a test
#                                 file proving the test exemptions stay
#                                 narrow, plus a multi-package module
#                                 exercising the flow-sensitive analyzers)
#   5. modelcheck timing         (the warm-cache whole-module run — export
#                                 data + call-graph summaries cached —
#                                 must finish under 2 s)
#   6. SARIF artifact            (modelcheck.sarif for code-scanning upload)
#   7. go test -race ./...       (unit + integration tests under the race
#                                 detector; covers the concurrent rpc/sim
#                                 layers)
#   8. fuzz smoke                (each rpc + record fuzz target runs for a
#                                 short -fuzztime beyond its checked-in
#                                 corpus; FUZZTIME overrides, default 3s)
#   9. async serving gates       (scripts/bench_async.sh: pooled park/
#                                 resume alloc budget, async >= 2x blocking
#                                 throughput at high in-flight counts, and
#                                 the 100k-in-flight goroutine-ceiling
#                                 soak; quick 500x iteration budget here,
#                                 CI re-runs it at BENCHTIME=2s)
#
# Any failure exits non-zero. CI runs exactly this script (.github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
MODELCHECK="$workdir/modelcheck"
go build -o "$MODELCHECK" ./cmd/modelcheck

echo "==> modelcheck -tests ./..."
"$MODELCHECK" -tests ./...

echo "==> modelcheck self-test (must flag a known-bad fixture)"
selftest="$workdir/selftest"
mkdir -p "$selftest"
cat > "$selftest/go.mod" <<'EOF'
module selftest

go 1.22
EOF
cat > "$selftest/bad.go" <<'EOF'
package selftest

import (
	"context"
	"math/rand"
	"os"
	"sync"
)

var mu sync.Mutex

func Bad(a, b float64) bool {
	mu.Lock()
	os.Remove("x")
	return a == b && rand.Float64() > 0.5
}

func BadCtx(ctx context.Context) {
	mu.Unlock()
}
EOF
if "$MODELCHECK" -C "$selftest" ./... > /dev/null 2>&1; then
    echo "FATAL: modelcheck exited 0 on a fixture with known findings" >&2
    exit 1
fi
echo "    ok: suite flags the bad fixture"

echo "==> modelcheck test-exemption self-test (rules stay narrow)"
cat > "$selftest/bad_test.go" <<'FIXEOF'
package selftest

import (
	"os"
	"testing"
)

// TestTeardownAndGolden carries two exempted findings (a golden-value
// float pin, a Cleanup teardown) and two still-flagged ones (a
// computed-vs-computed float comparison, an invisible error discard).
func TestTeardownAndGolden(t *testing.T) {
	got := float64(len(os.Args)) * 0.5
	if got == 1.5 { // exempt: golden-value pin against a constant
		t.Log("golden")
	}
	if got == got*3 { // line 16: flagged even in a test file
		t.Log("computed")
	}
	t.Cleanup(func() { os.Remove("x") }) // exempt: teardown rule
	os.Remove("y")                       // line 20: flagged - invisible discard
}
FIXEOF
testout="$("$MODELCHECK" -C "$selftest" -tests -json ./... 2>/dev/null || true)"
badtest_findings=$(grep -c "bad_test.go" <<<"$testout" || true)
if [ "$badtest_findings" -ne 2 ]; then
    echo "FATAL: bad_test.go produced $badtest_findings finding(s), want exactly 2 (golden-value and teardown exemptions must hold; computed comparison and invisible discard must stay flagged)" >&2
    echo "$testout" >&2
    exit 1
fi
if ! grep -q '"line": 16' <<<"$testout" || ! grep -q '"line": 20' <<<"$testout"; then
    echo "FATAL: bad_test.go findings are not the expected ones (want the computed float comparison on line 16 and the invisible discard on line 20)" >&2
    echo "$testout" >&2
    exit 1
fi
echo "    ok: test exemptions hold and the still-bad test findings survive"

echo "==> modelcheck flow-sensitive self-test (CFG + call-graph findings)"
flowtest="$workdir/flowtest"
mkdir -p "$flowtest/internal/core" "$flowtest/internal/rpc" "$flowtest/app"
cat > "$flowtest/go.mod" <<'EOF'
module selftestflow

go 1.22
EOF
cat > "$flowtest/internal/core/core.go" <<'EOF'
package core

import "errors"

type Params struct{ C float64 }

func (p Params) Validate() error {
	if p.C <= 0 {
		return errors.New("core: C must be positive")
	}
	return nil
}

func New(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.C, nil
}
EOF
cat > "$flowtest/internal/rpc/pool.go" <<'EOF'
package rpc

import "sync"

func getBuf(n int) []byte { return make([]byte, 0, n) }
func putBuf(b []byte)     {}
func use(b []byte) int    { return len(b) }

var mu sync.Mutex

// LeakEarly: the early return drops the buffer — poolcheck finding.
func LeakEarly(stop bool) int {
	b := getBuf(64)
	if stop {
		return 0
	}
	n := use(b)
	putBuf(b)
	return n
}

// UseAfterPut: b is read after going back to the pool — poolcheck finding.
func UseAfterPut() int {
	b := getBuf(64)
	putBuf(b)
	return use(b)
}

// LockLeak: the early return holds mu — a lockcheck finding the old
// function-scoped heuristic could not see (an Unlock exists in the body).
func LockLeak(stop bool) int {
	mu.Lock()
	if stop {
		return 0
	}
	mu.Unlock()
	return 1
}

// getBuf64 gets from the pool on the caller's behalf; the summary
// fixpoint marks its result pooled (ReturnsPooled).
func getBuf64() []byte { return getBuf(64)[:0] }

// LeakViaHelper drops the helper-obtained buffer — a poolcheck finding
// resolved through the ReturnsPooled summary bit, not a direct get.
func LeakViaHelper() int {
	b := getBuf64()
	return use(b)
}

// GoodViaHelper releases the helper-obtained buffer — clean.
func GoodViaHelper() int {
	b := getBuf64()
	n := use(b)
	putBuf(b)
	return n
}
EOF
cat > "$flowtest/app/app.go" <<'EOF'
package app

import "selftestflow/internal/core"

// defaults is a helper constructor; callers inherit the validation debt.
func defaults() core.Params {
	return core.Params{C: 2.5e9}
}

// BadRun uses the helper's result raw — paramvalidate finding, resolved
// through the call-graph summary of defaults, not an annotation.
func BadRun() float64 {
	p := defaults()
	return p.C * 2
}

// GoodRun hands the same result to a validating entry point — clean.
func GoodRun() (float64, error) {
	p := defaults()
	return core.New(p)
}
EOF
flowout="$("$MODELCHECK" -C "$flowtest" -json ./... 2>/dev/null || true)"
flowcount() { grep -c "\"analyzer\": \"$1\"" <<<"$flowout" || true; }
if [ "$(flowcount poolcheck)" -ne 3 ]; then
    echo "FATAL: poolcheck found $(flowcount poolcheck) finding(s) in the flow fixture, want 3 (missing put + use-after-put + helper-get leak)" >&2
    echo "$flowout" >&2
    exit 1
fi
if [ "$(flowcount lockcheck)" -ne 1 ]; then
    echo "FATAL: lockcheck found $(flowcount lockcheck) finding(s) in the flow fixture, want 1 (early return holding the lock)" >&2
    echo "$flowout" >&2
    exit 1
fi
if [ "$(flowcount paramvalidate)" -ne 1 ]; then
    echo "FATAL: paramvalidate found $(flowcount paramvalidate) finding(s) in the flow fixture, want 1 (helper-constructor result used raw)" >&2
    echo "$flowout" >&2
    exit 1
fi
echo "    ok: poolcheck x3, lockcheck x1, paramvalidate x1 — and the validating callers stay clean"

echo "==> modelcheck warm-cache timing (< 2s for the whole module)"
start_ns=$(date +%s%N)
"$MODELCHECK" ./... > /dev/null
end_ns=$(date +%s%N)
elapsed_ms=$(( (end_ns - start_ns) / 1000000 ))
if [ "$elapsed_ms" -ge 2000 ]; then
    echo "FATAL: warm modelcheck run took ${elapsed_ms}ms, budget is 2000ms" >&2
    exit 1
fi
echo "    ok: ${elapsed_ms}ms"

echo "==> SARIF artifact (modelcheck.sarif)"
"$MODELCHECK" -sarif ./... > modelcheck.sarif
echo "    ok: $(wc -c < modelcheck.sarif) bytes"

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (${FUZZTIME:-3s} per target)"
fuzz_smoke() {
    local pkg="$1"; shift
    for target in "$@"; do
        echo "    fuzzing $pkg $target"
        go test -run '^$' -fuzz "^${target}\$" -fuzztime "${FUZZTIME:-3s}" "$pkg" > /dev/null
    done
}
fuzz_smoke ./internal/rpc FuzzReadFrame FuzzCodecRoundTrip FuzzBatchPayloadRoundTrip
fuzz_smoke ./internal/record FuzzDecodeTrace

echo "==> async serving gates (bench_async.sh)"
./scripts/bench_async.sh

echo "==> all gates green"
