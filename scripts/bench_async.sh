#!/usr/bin/env bash
# bench_async.sh — completion-queue serving path gates, captured as JSON.
#
# Three gates on the async offload engine (internal/rpc/async.go):
#
#   1. Pooled continuation: BenchmarkAsyncParkResume (one full client ->
#      park -> device -> resume -> response round trip) must stay within
#      MAX_PARK_ALLOCS allocs/op (default 24; measured ~14) — growth means
#      parked state stopped being pooled.
#   2. Threading-design contrast: with 256 calls in flight on an 8-worker
#      pool and the same device latency, the async (parked) arm's ns/op
#      must beat the blocking arm by at least MIN_ASYNC_RATIO x (default
#      2; measured ~15x) — the entire point of equation (6).
#   3. Goroutine ceiling: the 100k-in-flight soak (ASYNC_SOAK_N
#      overridable) re-runs standalone; it fails itself if the goroutine
#      peak grows with the offload count or parked allocations blow the
#      budget.
#
# Writes BENCH_async.json. Override the iteration budget with BENCHTIME
# (default 500x; use e.g. BENCHTIME=2s locally for stable numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_async.json}"
max_park_allocs="${MAX_PARK_ALLOCS:-24}"
min_ratio="${MIN_ASYNC_RATIO:-2}"
raw="$(go test -run '^$' \
    -bench '^(BenchmarkAsyncParkResume|BenchmarkServingAsyncHighInflight|BenchmarkServingBlockingHighInflight)$' \
    -benchmem -benchtime "${BENCHTIME:-500x}" ./internal/rpc/)"
echo "$raw"

echo "$raw" | awk -v max_allocs="$max_park_allocs" -v min_ratio="$min_ratio" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    ns[name] = nsop
    allocs[name] = aop
    printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        (n++ ? ",\n" : ""), name, $2, nsop, bop, aop
}
BEGIN { print "[" }
END {
    if (n != 3) { print "expected 3 benchmark lines, parsed " n > "/dev/stderr"; exit 1 }
    park = allocs["BenchmarkAsyncParkResume"]
    async = ns["BenchmarkServingAsyncHighInflight"]
    blocking = ns["BenchmarkServingBlockingHighInflight"]
    if (park == "null" || async == "null" || blocking == "null" || async + 0 == 0) {
        print "missing benchmark results" > "/dev/stderr"; exit 1
    }
    ratio = blocking / async
    printf ",\n  {\"name\": \"park_resume_allocs_budget\", \"allocs_per_op\": %s, \"max_allowed\": %s}",
        park, max_allocs
    printf ",\n  {\"name\": \"async_vs_blocking_throughput_ratio\", \"value\": %.3f, \"min_required\": %s}\n]\n",
        ratio, min_ratio
    printf "park/resume round trip: %s allocs/op (budget %s)\n", park, max_allocs > "/dev/stderr"
    printf "async vs blocking at 256 in flight: %.2fx (floor %sx)\n", ratio, min_ratio > "/dev/stderr"
    fail = 0
    if (park + 0 > max_allocs + 0) {
        printf "FATAL: park/resume allocates %s/op, budget is %s/op — continuation no longer pooled?\n",
            park, max_allocs > "/dev/stderr"
        fail = 1
    }
    if (ratio < min_ratio + 0) {
        printf "FATAL: async arm only %.2fx faster than blocking, floor is %sx\n",
            ratio, min_ratio > "/dev/stderr"
        fail = 1
    }
    exit fail
}
' > "$out"

echo "==> 100k-in-flight soak (goroutine ceiling + parked alloc budget)"
ASYNC_SOAK_N="${ASYNC_SOAK_N:-100000}" \
    go test -run '^TestAsyncSoak100kInFlight$' -count=1 -v ./internal/rpc/ | grep -E 'parked|ok|FAIL'

echo "wrote $out"
