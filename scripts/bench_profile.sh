#!/usr/bin/env bash
# bench_profile.sh — zero-cost gate for the CPU-attribution labels, captured
# as JSON.
#
# The serving paths (services.Exercise stages, rpc pipeline stages, fleet
# workers) are wrapped in proflabel.Do regions so CPU profiles attribute
# cycles to service/functionality/kernel. The contract is that this costs
# nothing while no profile is being collected. This script pins it with the
# region-level benchmarks in internal/proflabel:
#
#   - BenchmarkRegionUninstrumented  the stage body called directly
#   - BenchmarkRegionDisabled        the same body behind proflabel.Do, off
#   - BenchmarkRegionEnabled         labels applied (informational: paid
#                                    only during a collection window)
#
# Gates (each benchmark runs BENCHCOUNT times, default 3; best run counts):
#   1. BenchmarkRegionDisabled must report 0 allocs/op — the disabled path
#      may not allocate, ever.
#   2. BenchmarkRegionDisabled ns/op must stay within MAX_OVERHEAD_PCT
#      (default 3%) of BenchmarkRegionUninstrumented.
#
# BenchmarkExerciseLabelsOff (internal/services) rides along informationally
# so whole-path instrumentation creep shows in the artifact history.
# Everything lands in BENCH_profile.json. Override the iteration budget with
# BENCHTIME (default 0.3s; CI uses 1s).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_profile.json}"
max_overhead="${MAX_OVERHEAD_PCT:-3}"
benchtime="${BENCHTIME:-0.3s}"
benchcount="${BENCHCOUNT:-3}"

raw="$(go test -run '^$' -bench '^BenchmarkRegion(Uninstrumented|Disabled|Enabled)$' \
    -benchmem -benchtime "$benchtime" -count "$benchcount" ./internal/proflabel)
$(go test -run '^$' -bench '^BenchmarkExerciseLabelsOff$' \
    -benchmem -benchtime "$benchtime" ./internal/services)"
echo "$raw"

echo "$raw" | awk -v max_overhead="$max_overhead" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop = bop = aop = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") nsop = $(i - 1)
        else if ($i == "B/op") bop = $(i - 1)
        else if ($i == "allocs/op") aop = $(i - 1)
    }
    if (nsop == "") next
    if (!(name in best) || nsop + 0 < best[name] + 0) {
        best[name] = nsop
        bytes[name] = bop
    }
    # Allocations must hold on every run, not just the best one.
    if (!(name in allocs) || aop + 0 > allocs[name] + 0) allocs[name] = aop
    seen[name] = 1
}
END {
    for (n in seen) required++
    if (!seen["BenchmarkRegionUninstrumented"] || !seen["BenchmarkRegionDisabled"]) {
        print "missing region benchmarks in output" > "/dev/stderr"; exit 1
    }
    base = best["BenchmarkRegionUninstrumented"] + 0
    disabled = best["BenchmarkRegionDisabled"] + 0
    overhead = base > 0 ? (disabled - base) / base * 100 : 0
    printf "[\n"
    n = 0
    for (name in seen) {
        printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
            (n++ ? ",\n" : ""), name, best[name], bytes[name] == "" ? "null" : bytes[name],
            allocs[name] == "" ? "null" : allocs[name]
    }
    printf ",\n  {\"name\": \"label_overhead_gate\", \"overhead_pct\": %.3f, \"max_overhead_pct\": %s, \"disabled_allocs_per_op\": %s}\n]\n",
        overhead, max_overhead, allocs["BenchmarkRegionDisabled"]
    printf "disabled-label region: %.3f%% overhead vs uninstrumented (budget %s%%), %s allocs/op (budget 0)\n",
        overhead, max_overhead, allocs["BenchmarkRegionDisabled"] > "/dev/stderr"
    if (allocs["BenchmarkRegionDisabled"] + 0 != 0) {
        printf "FATAL: disabled-label path allocates %s/op; the off switch must be allocation-free\n",
            allocs["BenchmarkRegionDisabled"] > "/dev/stderr"
        exit 1
    }
    if (overhead > max_overhead + 0) {
        printf "FATAL: disabled-label path is %.3f%% slower than uninstrumented, budget %s%%\n",
            overhead, max_overhead > "/dev/stderr"
        exit 1
    }
}
' > "$out"

echo "wrote $out"
