#!/usr/bin/env bash
# coverage.sh — statement-coverage floor for the rpc package.
#
# The batching/fuzz/soak PR measured internal/rpc at 88.6% statement
# coverage before it landed; this gate fails if coverage ever drops below
# that pre-PR baseline, so new rpc surface area must arrive with tests.
# Raise the floor (never lower it) when coverage durably improves.
#
# Usage: scripts/coverage.sh            (gate internal/rpc)
#        RPC_COVER_MIN=90 scripts/coverage.sh   (override the floor)
set -euo pipefail
cd "$(dirname "$0")/.."

floor="${RPC_COVER_MIN:-88.6}"

out="$(go test -count=1 -cover ./internal/rpc/)"
echo "$out"

pct="$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')"
if [ -z "$pct" ]; then
    echo "FATAL: could not parse coverage percentage from go test output" >&2
    exit 1
fi

awk -v pct="$pct" -v floor="$floor" 'BEGIN {
    if (pct + 0 < floor + 0) {
        printf "FATAL: internal/rpc coverage %.1f%% below the %.1f%% floor\n", pct, floor > "/dev/stderr"
        exit 1
    }
    printf "internal/rpc coverage %.1f%% >= %.1f%% floor\n", pct, floor
}'
