#!/usr/bin/env bash
# coverage.sh — statement-coverage floors for the measured-path packages.
#
# Each floor is the package's coverage when its gate landed, so new
# surface area must arrive with tests; raise a floor (never lower it)
# when coverage durably improves:
#
#   internal/rpc       88.6%  (batching/fuzz/soak PR)
#   internal/topology  80.0%  (multi-tier topology PR; measured 91.7%,
#                              floored lower because the non-short
#                              measured-vs-model test exercises a chunk
#                              of runner.go only on full runs)
#   internal/kernels   90.0%  (async serving-path PR; measured 96.0%
#                              with the SimAccel error-path tests)
#
# Usage: scripts/coverage.sh
#        RPC_COVER_MIN=90 TOPOLOGY_COVER_MIN=85 KERNELS_COVER_MIN=92 scripts/coverage.sh
set -euo pipefail
cd "$(dirname "$0")/.."

gate() {
    local pkg="$1" floor="$2"
    local out pct
    out="$(go test -count=1 -cover "./$pkg/")"
    echo "$out"
    pct="$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')"
    if [ -z "$pct" ]; then
        echo "FATAL: could not parse coverage percentage for $pkg" >&2
        exit 1
    fi
    awk -v pkg="$pkg" -v pct="$pct" -v floor="$floor" 'BEGIN {
        if (pct + 0 < floor + 0) {
            printf "FATAL: %s coverage %.1f%% below the %.1f%% floor\n", pkg, pct, floor > "/dev/stderr"
            exit 1
        }
        printf "%s coverage %.1f%% >= %.1f%% floor\n", pkg, pct, floor
    }'
}

gate internal/rpc "${RPC_COVER_MIN:-88.6}"
gate internal/topology "${TOPOLOGY_COVER_MIN:-80}"
gate internal/kernels "${KERNELS_COVER_MIN:-90}"
