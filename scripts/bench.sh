#!/usr/bin/env bash
# bench.sh — telemetry overhead benchmark, captured as JSON.
#
# Runs the instrumented-vs-disabled RPC Call benchmark pair from
# bench_test.go and writes BENCH_telemetry.json with ns/op, B/op, and
# allocs/op for each, so the cost of the telemetry layer is tracked as an
# artifact. Override the iteration budget with BENCHTIME (default 100x;
# use e.g. BENCHTIME=2s locally for stable numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_telemetry.json}"
raw="$(go test -run '^$' -bench '^(BenchmarkCall(Disabled|Instrumented)|BenchmarkTelemetryDisabledSinks)$' \
    -benchmem -benchtime "${BENCHTIME:-100x}" .)"
echo "$raw"

echo "$raw" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        (n++ ? ",\n" : ""), name, $2, $3, $5, $7
}
BEGIN { print "[" }
END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "\n]"
}
' > "$out"

echo "wrote $out"
