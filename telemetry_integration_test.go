package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// End-to-end telemetry integration: the CLI export flags must emit valid
// Prometheus text and Perfetto-loadable Chrome traces without changing the
// artifact output, and an instrumented RPC exchange must export a trace
// whose pipeline-stage events nest under their call span.

func buildBinary(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, msg)
	}
	return bin
}

// chromeTraceFile is the exported trace shape the assertions read back.
type chromeTraceFile struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func readTrace(t *testing.T, path string) chromeTraceFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed chromeTraceFile
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("%s is not valid Chrome trace JSON: %v", path, err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatalf("%s has no trace events", path)
	}
	return parsed
}

func TestExperimentsTelemetryFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries")
	}
	bin := buildBinary(t, "experiments")
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.txt")
	trace := filepath.Join(dir, "trace.json")

	plain := run(t, bin, "", "-run", "tab7")
	flagged := run(t, bin, "", "-run", "tab7", "-metrics-out", metrics, "-trace-out", trace)
	if plain != flagged {
		t.Errorf("telemetry flags changed the artifact output:\nplain:\n%s\nflagged:\n%s", plain, flagged)
	}

	mtext, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE experiment_runtime_seconds summary",
		`experiment_runtime_seconds{quantile="0.5"}`,
		"experiment_runtime_seconds_count 1",
	} {
		if !strings.Contains(string(mtext), want) {
			t.Errorf("metrics file missing %q:\n%s", want, mtext)
		}
	}

	parsed := readTrace(t, trace)
	found := false
	for _, e := range parsed.TraceEvents {
		if e.Name == "experiment/tab7" && e.Ph == "X" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing experiment/tab7 span: %+v", parsed.TraceEvents)
	}
}

func TestAccelerometerTelemetryFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries")
	}
	bin := buildBinary(t, "accelerometer")
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.txt")
	trace := filepath.Join(dir, "trace.json")
	conf := "name = aesni\nC=2e9\nalpha=0.165844\nn=298951\no0=10\nL=3\nA=6\nthreading=sync\n"

	out := run(t, bin, conf, "-config", "-", "-all",
		"-metrics-out", metrics, "-trace-out", trace)
	if !strings.Contains(out, "15.78") {
		t.Errorf("instrumented run lost the estimate:\n%s", out)
	}
	mtext, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	// -all evaluates all five threading designs.
	if !strings.Contains(string(mtext), "accelerometer_evals_total 5") {
		t.Errorf("metrics file missing eval counter:\n%s", mtext)
	}
	parsed := readTrace(t, trace)
	evalSpans := 0
	for _, e := range parsed.TraceEvents {
		if strings.HasPrefix(e.Name, "evaluate/") {
			evalSpans++
		}
	}
	if evalSpans != 5 {
		t.Errorf("trace has %d evaluate spans, want 5", evalSpans)
	}
}

// An instrumented client/server exchange, exported as a Chrome trace, must
// carry the pipeline-stage events nested under their call span (parent span
// linkage preserved through the export) across both process timelines.
func TestChromeTraceExportNestsStageSpans(t *testing.T) {
	clientTr := telemetry.NewTracer("client")
	serverTr := telemetry.NewTracer("server")
	reg := telemetry.NewRegistry()
	mx, err := rpc.NewMetrics(reg, "rpc_client")
	if err != nil {
		t.Fatal(err)
	}

	srv, err := rpc.NewServer(func(_ context.Context, m rpc.Message) (rpc.Message, error) { return m, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(&rpc.Instrumentation{Tracer: serverTr})
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Instrument(&rpc.Instrumentation{Tracer: clientTr, Metrics: mx})
	if _, err := client.Call(rpc.Message{Method: "echo", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Close the conn, then wait for the serve goroutine so the server-side
	// spans are fully recorded before collecting them.
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	spans := append(clientTr.Spans(), serverTr.Spans()...)
	if err := telemetry.WriteTraceFile(path, spans); err != nil {
		t.Fatal(err)
	}
	parsed := readTrace(t, path)

	var callSpan string
	for _, e := range parsed.TraceEvents {
		if e.Name == "rpc.Call/echo" {
			callSpan = e.Args["span"]
		}
	}
	if callSpan == "" {
		t.Fatal("trace missing the rpc.Call/echo root span")
	}
	nested := map[string]bool{}
	pids := map[int]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			pids[e.Pid] = true
		}
		if e.Args["parent"] == callSpan {
			nested[e.Name] = true
		}
	}
	for _, stage := range []string{"serialize", "frame-write", "net-wait", "deserialize"} {
		if !nested[stage] {
			t.Errorf("stage %q not nested under the call span; nested = %v", stage, nested)
		}
	}
	// The server handler joins the same trace as a child of the call span.
	if !nested["rpc.Server/echo"] {
		t.Errorf("server handler span not parented on the client call span; nested = %v", nested)
	}
	if len(pids) != 2 {
		t.Errorf("expected client+server pids, got %v", pids)
	}
	// And the metrics side saw the call.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rpc_client_calls_total 1") {
		t.Errorf("prometheus export missing call counter:\n%s", sb.String())
	}
}
