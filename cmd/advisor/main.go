// Command advisor profiles a synthetic service and prints ranked
// acceleration recommendations — the automated form of the paper's Table 4
// findings-to-opportunities mapping.
//
// Usage:
//
//	advisor -service Cache1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/advisor"
	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
	"repro/internal/services"
)

func main() {
	name := flag.String("service", "Cache1", "service to advise on")
	flag.Parse()

	svc, err := services.New(fleetdata.Service(*name))
	if err != nil {
		fatal(err)
	}
	p, err := svc.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		fatal(err)
	}

	scaling := map[string]float64{}
	for _, cat := range cpuarch.Cache1LeafIPC.Categories() {
		if f, err := cpuarch.Cache1LeafIPC.ScalingFactor(cat, cpuarch.GenA, cpuarch.GenC); err == nil {
			scaling[cat] = f
		}
	}
	recs, err := advisor.Analyze(advisor.Input{
		Service:       svc.Name,
		Functionality: p.FunctionalityBreakdown(profiler.NewFunctionalityBucketer()),
		Leaf:          p.LeafBreakdown(profiler.NewLeafTagger()),
		MemoryLeaf:    p.LeafFunctionBreakdown("mem", profiler.MemoryLabels, "Other"),
		IPCScaling:    scaling,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Acceleration opportunities for %s (%d findings):\n\n", svc.Name, len(recs))
	for i, r := range recs {
		fmt.Printf("%d. [%s] %s\n   -> %s\n", i+1, r.Severity, r.Finding, r.Opportunity)
		if r.ProjectedSpeedupPct > 0 {
			fmt.Printf("   projected speedup: %+.1f%%\n", r.ProjectedSpeedupPct)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advisor:", err)
	os.Exit(1)
}
