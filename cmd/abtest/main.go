// Command abtest replays one of the paper's three validation case studies
// (Table 6) as a paired simulation A/B test and compares the measured
// speedup with the Accelerometer estimate.
//
// Usage:
//
//	abtest -case aesni
//	abtest -case encryption -requests 2000 -trials 5
//	abtest -case inference
//
// With -replay it instead pairs two real client stacks on one recorded
// trace: the same request stream — byte-identical arrivals, payloads, and
// timestamps — is issued open-loop through an unbatched sequential client
// and through the coalescing rpc.Batcher, against the same in-process
// echo server, so any latency difference is the client stack's alone:
//
//	abtest -replay testdata/scenarios/retry-storm.trace -dilate 0.1
//
// With -replay -async the arms contrast serving threading designs instead
// of client stacks: the same trace drives a completion-queue server twice
// — once with handlers that block an engine worker for the whole offload
// (Sync), once with handlers that park the continuation (AsyncSameThread):
//
//	abtest -replay testdata/scenarios/retry-storm.trace -async -dilate 0.1 -workers 4
//
// Adding -explain traces both serving arms and prints the tail-tax
// attribution per arm — where each quantile's nanoseconds went (queueing
// vs device wait vs handler work) — so the p99 ratio comes with its
// mechanism attached:
//
//	abtest -replay testdata/scenarios/retry-storm.trace -async -explain -dilate 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/abtest"
	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/record"
	"repro/internal/sim"
	"repro/internal/tailtrace"
	"repro/internal/textchart"
)

func main() {
	name := flag.String("case", "aesni", "case study: aesni, encryption, or inference")
	requests := flag.Int("requests", 1000, "requests per simulation trial")
	trials := flag.Int("trials", 3, "paired A/B trials")
	batch := flag.Float64("batch", 1, "rpc batch factor b >= 1: replay the case study with fixed per-offload costs amortized across b requests")
	replayPath := flag.String("replay", "", "recorded trace: A/B the batched vs unbatched RPC client on byte-identical arrivals")
	dilate := flag.Float64("dilate", 1, "time dilation for -replay: >1 stretches recorded gaps, <1 compresses them")
	maxBatch := flag.Int("max-batch", 8, "batcher coalescing bound for the batched arm (with -replay)")
	asyncServe := flag.Bool("async", false, "with -replay: A/B sync vs async serving (blocking vs parked offloads) instead of client stacks")
	workers := flag.Int("workers", 4, "engine worker pool per serving arm (with -replay -async)")
	offloadLatency := flag.Duration("offload-latency", 0, "simulated accelerator latency per offload (with -replay -async; default 1ms)")
	explain := flag.Bool("explain", false, "with -replay -async: trace both arms and print the per-quantile tail-tax attribution delta")
	flag.Parse()
	if err := core.ValidateBatch(*batch); err != nil {
		fatal(err)
	}
	if *replayPath != "" {
		var err error
		if *asyncServe {
			err = runServingAB(*replayPath, *dilate, *workers, *offloadLatency, *explain)
		} else {
			err = runTraceAB(*replayPath, *dilate, *maxBatch)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	var cs *fleetdata.CaseStudy
	for i := range fleetdata.CaseStudies {
		if strings.EqualFold(fleetdata.CaseStudies[i].Name, *name) ||
			strings.EqualFold(strings.ReplaceAll(fleetdata.CaseStudies[i].Name, "-", ""), *name) {
			cs = &fleetdata.CaseStudies[i]
			break
		}
	}
	if cs == nil {
		fmt.Fprintf(os.Stderr, "abtest: unknown case study %q (want aesni, encryption, or inference)\n", *name)
		os.Exit(2)
	}

	p := cs.Params
	kernelCycles := p.Alpha * p.C / p.N
	nonKernel := (1 - p.Alpha) * p.C / p.N
	bytes := uint64(kernelCycles / 5.5)
	if bytes == 0 {
		bytes = 1
	}
	wl := sim.UniformWorkload{
		NonKernelCycles: nonKernel,
		KernelsPerReq:   1,
		KernelBytes:     bytes,
		Kernel:          core.LinearKernel(kernelCycles / float64(bytes)),
	}
	factory := func(uint64) (sim.Workload, error) { return wl, nil }

	threads := 1
	if cs.Threading == core.SyncOS || cs.Threading == core.AsyncDistinctThread {
		threads = 4
	}
	base := sim.Config{
		Cores: 1, Threads: threads, ContextSwitch: p.O1,
		HostHz: p.C, Requests: *requests,
	}
	accel := base
	a := p.A
	if a < 1 {
		a = 1
	}
	accel.Accel = &sim.Accel{
		Threading: cs.Threading, Strategy: cs.Strategy,
		A: a, O0: p.O0 / *batch, L: p.L / *batch, Servers: 4,
	}

	comp, err := abtest.Run(base, accel, factory, *trials)
	if err != nil {
		fatal(err)
	}
	m, err := core.New(p)
	if err != nil {
		fatal(err)
	}
	if *batch > 1 {
		// Compare the simulator's batched replay against the batched model,
		// so measured and modeled amortization stay paired.
		if m, err = m.Batched(*batch); err != nil {
			fatal(err)
		}
	}
	est, err := m.Speedup(cs.Threading)
	if err != nil {
		fatal(err)
	}
	v, err := abtest.Validate(est, comp)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Case study: %s for %s (%s, %s)", cs.Name, cs.Service, cs.Threading, cs.Strategy)
	if *batch > 1 {
		fmt.Printf(", batch b=%g", *batch)
	}
	fmt.Print("\n\n")
	tb := textchart.NewTable("Metric", "Value")
	tb.AddRowf("Baseline QPS", comp.BaselineQPS)
	tb.AddRowf("Accelerated QPS", comp.AcceleratedQPS)
	tb.AddRowf("Measured speedup %", v.MeasuredPct)
	tb.AddRowf("Model estimate %", v.EstimatedPct)
	tb.AddRowf("Model-vs-measured error %", v.ErrorPct)
	tb.AddRowf("Paper estimate %", cs.EstimatedPct)
	tb.AddRowf("Paper production speedup %", cs.RealPct)
	tb.AddRowf("Offloads per second", comp.OffloadsPerSecond)
	tb.AddRowf("Mean accelerator queue (cycles)", comp.MeanQueueDelay)
	fmt.Print(tb.Render())
}

// runTraceAB replays one recorded trace through both RPC client stacks
// and prints the paired comparison.
func runTraceAB(path string, dilate float64, maxBatch int) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := record.ReplayAB(context.Background(), tr, record.ABConfig{Dilate: dilate, MaxBatch: maxBatch})
	if err != nil {
		return err
	}
	fmt.Printf("Trace A/B: %s — %d events, %s recorded span, dilation %g, batcher bound %d\n",
		path, res.Events, tr.Duration(), dilate, maxBatch)
	fmt.Println("Both arms replay byte-identical arrivals; only the client stack differs.")
	fmt.Println()
	tb := textchart.NewTable("Metric", "Unbatched", "Batched")
	row := func(label string, f func(record.ABArm) float64) {
		tb.AddRowf(label, f(res.Unbatched), f(res.Batched))
	}
	row("Requests issued", func(a record.ABArm) float64 { return float64(a.Stats.Issued) })
	row("Errors", func(a record.ABArm) float64 { return float64(a.Stats.Errors) })
	row("Replay wall time (s)", func(a record.ABArm) float64 { return a.Stats.Duration.Seconds() })
	row("Max issue lag (ms)", func(a record.ABArm) float64 { return float64(a.Stats.MaxLagNanos) / 1e6 })
	row("Mean latency (ms)", func(a record.ABArm) float64 { return a.Latency.Mean() / 1e6 })
	row("p50 latency (ms)", func(a record.ABArm) float64 { return a.Latency.Quantile(0.5) / 1e6 })
	row("p99 latency (ms)", func(a record.ABArm) float64 { return a.Latency.Quantile(0.99) / 1e6 })
	fmt.Print(tb.Render())
	if um, bm := res.Unbatched.Latency.Mean(), res.Batched.Latency.Mean(); bm > 0 {
		fmt.Printf("\nMean-latency ratio (unbatched/batched): %.3gx\n", um/bm)
	}
	return nil
}

// runServingAB replays one recorded trace through the sync and async
// serving arms and prints the paired comparison.
func runServingAB(path string, dilate float64, workers int, offloadLatency time.Duration, explain bool) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := record.ReplayServingAB(context.Background(), tr, record.ServingABConfig{
		Dilate:         dilate,
		Workers:        workers,
		OffloadLatency: offloadLatency,
		Trace:          explain,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Serving A/B: %s — %d events, %s recorded span, dilation %g, %d engine workers\n",
		path, res.Events, tr.Duration(), dilate, workers)
	fmt.Println("Both arms replay byte-identical arrivals through the same engine pool;")
	fmt.Println("only the threading design at the offload point differs.")
	fmt.Println()
	tb := textchart.NewTable("Metric", "Sync (blocking)", "Async (parked)")
	row := func(label string, f func(record.ABArm) float64) {
		tb.AddRowf(label, f(res.Sync), f(res.Async))
	}
	row("Requests issued", func(a record.ABArm) float64 { return float64(a.Stats.Issued) })
	row("Errors", func(a record.ABArm) float64 { return float64(a.Stats.Errors) })
	row("Replay wall time (s)", func(a record.ABArm) float64 { return a.Stats.Duration.Seconds() })
	row("Max issue lag (ms)", func(a record.ABArm) float64 { return float64(a.Stats.MaxLagNanos) / 1e6 })
	row("Mean latency (ms)", func(a record.ABArm) float64 { return a.Latency.Mean() / 1e6 })
	row("p50 latency (ms)", func(a record.ABArm) float64 { return a.Latency.Quantile(0.5) / 1e6 })
	row("p99 latency (ms)", func(a record.ABArm) float64 { return a.Latency.Quantile(0.99) / 1e6 })
	fmt.Print(tb.Render())
	if sp, ap := res.Sync.Latency.Quantile(0.99), res.Async.Latency.Quantile(0.99); ap > 0 {
		fmt.Printf("\np99 ratio (sync/async): %.3gx\n", sp/ap)
	}
	if explain {
		explainServingAB(res)
	}
	return nil
}

// explainServingAB prints each arm's tail-tax attribution and the
// per-category p99 delta — the mechanism behind the headline ratio. In
// the sync arm an offload's wall time is buried inside the handler span
// (the worker is blocked, so it reads as work) and the backlog shows up
// as queue-wait; the async arm splits the same nanoseconds into explicit
// device (park) and queue (resume) time, and the queue column collapses
// because parked requests stop occupying workers.
func explainServingAB(res *record.ServingABResult) {
	arms := []struct {
		name string
		arm  record.ABArm
	}{{"sync", res.Sync}, {"async", res.Async}}
	reports := make(map[string]*tailtrace.Report, len(arms))
	for _, a := range arms {
		fmt.Printf("\n[%s arm] ", a.name)
		rep := tailtrace.Analyze(a.arm.Spans, tailtrace.Options{})
		reports[a.name] = rep
		var sb strings.Builder
		rep.RenderText(&sb)
		fmt.Print(sb.String())
	}
	sync, async := reports["sync"], reports["async"]
	syncP99, okS := p99Row(sync)
	asyncP99, okA := p99Row(async)
	if !okS || !okA {
		return
	}
	fmt.Println("\nWhy async won (p99 request, per category):")
	dt := textchart.NewTable("Category", "Sync (ms)", "Async (ms)", "Delta (ms)")
	cats := append([]string(nil), sync.Categories...)
	for _, c := range async.Categories {
		seen := false
		for _, have := range cats {
			if have == c {
				seen = true
				break
			}
		}
		if !seen {
			cats = append(cats, c)
		}
	}
	for _, c := range cats {
		s, a := syncP99.ByCategory[c]/1e6, asyncP99.ByCategory[c]/1e6
		dt.AddRow(c, fmt.Sprintf("%.3f", s), fmt.Sprintf("%.3f", a), fmt.Sprintf("%+.3f", a-s))
	}
	dt.AddRow("total", fmt.Sprintf("%.3f", syncP99.TotalNanos/1e6),
		fmt.Sprintf("%.3f", asyncP99.TotalNanos/1e6),
		fmt.Sprintf("%+.3f", (asyncP99.TotalNanos-syncP99.TotalNanos)/1e6))
	fmt.Print(dt.Render())
}

// p99Row pulls the p99 slice out of a report.
func p99Row(rep *tailtrace.Report) (tailtrace.TaxRow, bool) {
	if rep == nil {
		return tailtrace.TaxRow{}, false
	}
	for _, row := range rep.Rows {
		if row.Label == "p99" {
			return row, true
		}
	}
	return tailtrace.TaxRow{}, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abtest:", err)
	os.Exit(1)
}
