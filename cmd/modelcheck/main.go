// Command modelcheck runs the repository's domain-aware static-analysis
// suite (internal/analysis) over the module and reports findings with
// file:line positions. It exits 1 when any finding survives the
// //modelcheck:ignore directives, making it suitable as a CI gate
// alongside go vet and go test -race (see scripts/check.sh).
//
// Usage:
//
//	modelcheck ./...                 # whole module (the CI gate)
//	modelcheck ./internal/rpc/...    # a subtree
//	modelcheck -list                 # describe the analyzers
//	modelcheck -run floatcmp ./...   # a subset of the suite
//	modelcheck -json ./...           # machine-readable findings
//	modelcheck -sarif ./...          # SARIF 2.1.0 for code-scanning upload
//	modelcheck -tests ./...          # include _test.go files and external test packages
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array")
		sarifOut = flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
		list     = flag.Bool("list", false, "list analyzers and exit")
		run      = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		tests    = flag.Bool("tests", false, "also analyze _test.go files and external test packages")
		dir      = flag.String("C", ".", "directory inside the module to analyze from")
		nocache  = flag.Bool("nocache", false, "bypass the .modelcheck-cache caches (export data and call-graph summaries)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir, IncludeTests: *tests, NoCache: *nocache}, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("modelcheck: no packages match %v", flag.Args()))
	}

	// The summary cache lives next to the export cache under the module
	// root; -nocache (or an unresolvable root) recomputes the fixpoint.
	root := ""
	if !*nocache {
		//modelcheck:ignore errdrop — no module root just means no summary cache; BuildModuleCached recomputes
		root, _ = analysis.ModuleRoot(*dir)
	}
	mod := analysis.BuildModuleCached(pkgs, root)
	findings := analysis.RunAnalyzersWithModule(pkgs, analyzers, mod)

	switch {
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, analyzers, findings); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "modelcheck: %d package(s), %d finding(s)\n", len(pkgs), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
