// Command characterize runs the synthetic fleet through the profiling
// pipeline and prints the paper's characterization figures (Figs 1-10).
//
// Usage:
//
//	characterize                    # all characterization figures
//	characterize -fig 9             # just Fig 9
//	characterize -dump profiles/    # also archive raw profiles as JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cpuarch"
	"repro/internal/experiments"
	"repro/internal/services"
)

func main() {
	fig := flag.Int("fig", 0, "single characterization figure to print (1-10); 0 = all")
	dump := flag.String("dump", "", "directory to archive raw per-service profiles (JSON)")
	flag.Parse()

	if *dump != "" {
		if err := dumpProfiles(*dump); err != nil {
			fatal(err)
		}
	}

	ids := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
	if *fig != 0 {
		if *fig < 1 || *fig > 10 {
			fmt.Fprintln(os.Stderr, "characterize: -fig must be within 1..10")
			os.Exit(2)
		}
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	}
	for _, id := range ids {
		e, err := experiments.Lookup(id)
		if err != nil {
			fatal(err)
		}
		out, err := e.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s: %s ===\n%s\n", e.ID, e.Title, out)
	}
}

// dumpProfiles archives each service's GenC profile to dir as JSON.
func dumpProfiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fleet, err := services.Fleet()
	if err != nil {
		return err
	}
	for _, s := range fleet {
		p, err := s.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, string(s.Name)+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = p.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "characterize: wrote %s\n", path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
