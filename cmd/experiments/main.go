// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list            # enumerate available artifacts
//	experiments -run fig9        # regenerate one artifact
//	experiments -run all         # regenerate everything
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/debugserver"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run (or \"all\")")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (\"-\" for stdout; load in Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve the observability endpoint (/metrics, /healthz, /debug/pprof/) on this address for the run")
	flag.Parse()

	var dbgReg *telemetry.Registry
	if *debugAddr != "" {
		dbgReg = telemetry.NewRegistry()
		dbg, err := debugserver.Start(debugserver.Config{Addr: *debugAddr, Registry: dbgReg})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: debug endpoint on %s\n", dbg.URL())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := dbg.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: debug shutdown:", err)
			}
		}()
	}

	// With either export flag set, each experiment's run is wrapped in a
	// span and timed into a runtime histogram; the artifact output itself
	// is byte-identical to the uninstrumented path (pinned by
	// determinism_test.go, asserted against the flagged path in the root
	// telemetry integration test).
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var runtimeHist *telemetry.Histogram
	if *metricsOut != "" || *traceOut != "" || dbgReg != nil {
		reg = dbgReg
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		tracer = telemetry.NewTracer("experiments")
		var terr error
		if runtimeHist, terr = reg.Histogram("experiment_runtime_seconds", "wall time per experiment artifact"); terr != nil {
			fatal(terr)
		}
	}
	flush := func() {
		if *metricsOut != "" {
			if err := telemetry.WriteMetricsFile(*metricsOut, reg); err != nil {
				fatal(err)
			}
		}
		if *traceOut != "" {
			if err := telemetry.WriteTraceFile(*traceOut, tracer.Spans()); err != nil {
				fatal(err)
			}
		}
	}

	runOne := func(e experiments.Experiment) (string, error) {
		sp := tracer.Start("experiment/" + e.ID)
		t0 := time.Now()
		out, err := e.Run()
		runtimeHist.Record(time.Since(t0).Seconds())
		sp.End()
		return out, err
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
	case *run == "all":
		// Same rendering as experiments.RunAll, with per-experiment spans.
		for _, e := range experiments.All() {
			out, err := runOne(e)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
			fmt.Printf("=== %s: %s ===\n%s\n", e.ID, e.Title, out)
		}
		flush()
	case *run != "":
		e, err := experiments.Lookup(*run)
		if err != nil {
			fatal(err)
		}
		out, err := runOne(e)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s: %s ===\n%s", e.ID, e.Title, out)
		flush()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
