// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list            # enumerate available artifacts
//	experiments -run fig9        # regenerate one artifact
//	experiments -run all         # regenerate everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run (or \"all\")")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
	case *run == "all":
		out, err := experiments.RunAll()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *run != "":
		e, err := experiments.Lookup(*run)
		if err != nil {
			fatal(err)
		}
		out, err := e.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s: %s ===\n%s", e.ID, e.Title, out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
