// Command accelerometer mirrors the paper's artifact workflow: read model
// parameters from a key=value configuration file and print the estimated
// throughput speedup and per-request latency reduction for the configured
// threading design — plus, with -all, every other design for comparison.
//
// Usage:
//
//	accelerometer -config case1.conf
//	accelerometer -config case1.conf -all
//	accelerometer -config case1.conf -batch 8
//	accelerometer -config case1.conf -sweep A -values 1,2,5,10,50
//	echo 'C=2e9
//	alpha=0.165844
//	n=298951
//	o0=10
//	L=3
//	A=6' | accelerometer -config -
//
// With -fleet it instead drives the sharded synthetic-fleet simulation
// (internal/fleet): the eight characterized services run across -shards
// workers, optionally with the batched offload path (-batch), and the
// per-service plus aggregate results are printed:
//
//	accelerometer -fleet -shards 4 -batch 8 -fleet-requests 200 -seed 42
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/textchart"
)

// sweepParams maps -sweep names to model parameters.
var sweepParams = map[string]core.SweepParam{
	"a": core.SweepA, "l": core.SweepL, "q": core.SweepQ,
	"o1": core.SweepO1, "alpha": core.SweepAlpha, "n": core.SweepN,
}

func main() {
	path := flag.String("config", "", "parameter file (\"-\" for stdin)")
	all := flag.Bool("all", false, "evaluate every threading design, not just the configured one")
	sweep := flag.String("sweep", "", "parameter to sweep (A, L, Q, o1, alpha, n)")
	values := flag.String("values", "", "comma-separated values for -sweep")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (\"-\" for stdout; load in Perfetto)")
	batch := flag.Float64("batch", 1, "rpc batch factor b >= 1: amortize fixed per-offload costs across b coalesced requests")
	fleetMode := flag.Bool("fleet", false, "simulate the sharded synthetic fleet instead of evaluating a -config model")
	shards := flag.Int("shards", 1, "fleet worker shards (with -fleet)")
	workers := flag.Int("workers", 0, "max goroutines running fleet shards; 0 = min(GOMAXPROCS, shards), 1 = sequential (with -fleet)")
	fleetRequests := flag.Int("fleet-requests", 200, "requests per service (with -fleet)")
	seed := flag.Uint64("seed", 42, "base workload seed (with -fleet)")
	flag.Parse()
	if *fleetMode {
		if err := runFleet(*shards, *workers, *batch, *fleetRequests, *seed, *metricsOut); err != nil {
			fatal(err)
		}
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry is optional: without the export flags both sinks stay nil
	// and the instrumented paths cost one nil check.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var evalTime *telemetry.Histogram
	var evals *telemetry.Counter
	if *metricsOut != "" || *traceOut != "" {
		reg = telemetry.NewRegistry()
		tracer = telemetry.NewTracer("accelerometer")
		var terr error
		if evalTime, terr = reg.Histogram("accelerometer_eval_seconds", "wall time per design evaluation"); terr != nil {
			fatal(terr)
		}
		if evals, terr = reg.Counter("accelerometer_evals_total", "design evaluations performed"); terr != nil {
			fatal(terr)
		}
		defer func() {
			if *metricsOut != "" {
				if err := telemetry.WriteMetricsFile(*metricsOut, reg); err != nil {
					fatal(err)
				}
			}
			if *traceOut != "" {
				if err := telemetry.WriteTraceFile(*traceOut, tracer.Spans()); err != nil {
					fatal(err)
				}
			}
		}()
	}

	var in io.Reader
	if *path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sc, err := config.Parse(in)
	if err != nil {
		fatal(err)
	}
	m, err := core.New(sc.Params)
	if err != nil {
		fatal(err)
	}

	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("Accelerometer estimate for %s (%s, %s)\n\n", name, sc.Threading, sc.Strategy)

	if *sweep != "" {
		sp := tracer.Start("sweep/" + *sweep)
		err := runSweep(m, sc, *sweep, *values)
		sp.End()
		if err != nil {
			fatal(err)
		}
		return
	}

	designs := []core.Threading{sc.Threading}
	if *all {
		designs = core.Threadings
	}
	tb := textchart.NewTable("Threading", "Speedup", "Speedup %", "Latency reduction", "Latency %")
	for _, th := range designs {
		sp := tracer.Start("evaluate/" + th.String())
		t0 := time.Now()
		s, err := m.Speedup(th)
		if err != nil {
			fatal(err)
		}
		l, err := m.LatencyReduction(th, sc.Strategy)
		if err != nil {
			fatal(err)
		}
		evalTime.Record(time.Since(t0).Seconds())
		evals.Inc()
		sp.End()
		tb.AddRowf(th.String(), s, (s-1)*100, l, (l-1)*100)
	}
	fmt.Print(tb.Render())
	fmt.Printf("\nIdeal (Amdahl) bound at alpha=%g: %.4gx\n", sc.Params.Alpha, m.IdealSpeedup())

	if *batch > 1 {
		bm, err := m.Batched(*batch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nWith rpc batching at b=%g (fixed per-offload costs amortized):\n", *batch)
		bt := textchart.NewTable("Threading", "Speedup", "Speedup %", "Batching gain")
		for _, th := range designs {
			s, err := bm.Speedup(th)
			if err != nil {
				fatal(err)
			}
			gain, err := m.BatchSpeedupGain(th, *batch)
			if err != nil {
				fatal(err)
			}
			bt.AddRowf(th.String(), s, (s-1)*100, gain)
		}
		fmt.Print(bt.Render())
	}
}

// runFleet drives the sharded synthetic-fleet simulation.
func runFleet(shards, workers int, batch float64, requests int, seed uint64, metricsOut string) error {
	var reg *telemetry.Registry
	if metricsOut != "" {
		reg = telemetry.NewRegistry()
	}
	cfg := fleet.Config{
		Shards:             shards,
		MaxWorkers:         workers,
		Seed:               seed,
		RequestsPerService: requests,
		Batch:              batch,
		Accel: &sim.Accel{
			Threading: core.Sync,
			Strategy:  core.OffChip,
			A:         10,
			O0:        500,
			L:         300,
			Servers:   2,
		},
		Telemetry: reg,
	}
	r, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Sharded fleet simulation: %d services, %d shards, batch b=%g, seed %d\n\n",
		len(r.Services), r.Shards, r.Batch, seed)
	tb := textchart.NewTable("Service", "Kernel", "Shard", "QPS", "p50 cycles", "p99 cycles", "Offloads")
	for _, sr := range r.Services {
		tb.AddRowf(string(sr.Service), sr.Kind.String(), sr.Shard,
			sr.Result.ThroughputQPS, sr.Result.P50Latency, sr.Result.P99Latency, sr.Result.Offloads)
	}
	fmt.Print(tb.Render())
	a := r.Aggregate
	fmt.Printf("\nFleet aggregate: %d requests, %.4g QPS, p50 %.4g / p95 %.4g / p99 %.4g cycles, %d offloads\n",
		a.Completed, a.ThroughputQPS, a.P50Latency, a.P95Latency, a.P99Latency, a.Offloads)
	if metricsOut != "" {
		return telemetry.WriteMetricsFile(metricsOut, reg)
	}
	return nil
}

// runSweep evaluates the configured design over a parameter range.
func runSweep(m *core.Model, sc config.Scenario, param, values string) error {
	p, ok := sweepParams[strings.ToLower(strings.TrimSpace(param))]
	if !ok {
		return fmt.Errorf("unknown sweep parameter %q (want A, L, Q, o1, alpha, or n)", param)
	}
	if values == "" {
		return fmt.Errorf("-sweep requires -values (comma-separated numbers)")
	}
	var vals []float64
	for _, raw := range strings.Split(values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return fmt.Errorf("invalid sweep value %q", raw)
		}
		vals = append(vals, v)
	}
	points, err := m.Sweep(p, sc.Threading, sc.Strategy, vals)
	if err != nil {
		return err
	}
	tb := textchart.NewTable(p.String(), "Speedup %", "Latency reduction %")
	for _, pt := range points {
		tb.AddRowf(pt.Value, (pt.Speedup-1)*100, (pt.LatencyReduction-1)*100)
	}
	fmt.Print(tb.Render())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accelerometer:", err)
	os.Exit(1)
}
