// Command accelerometer mirrors the paper's artifact workflow: read model
// parameters from a key=value configuration file and print the estimated
// throughput speedup and per-request latency reduction for the configured
// threading design — plus, with -all, every other design for comparison.
//
// Usage:
//
//	accelerometer -config case1.conf
//	accelerometer -config case1.conf -all
//	accelerometer -config case1.conf -batch 8
//	accelerometer -config case1.conf -sweep A -values 1,2,5,10,50
//	echo 'C=2e9
//	alpha=0.165844
//	n=298951
//	o0=10
//	L=3
//	A=6' | accelerometer -config -
//
// With -fleet it instead drives the sharded synthetic-fleet simulation
// (internal/fleet): the eight characterized services run across -shards
// workers, optionally with the batched offload path (-batch), and the
// per-service plus aggregate results are printed:
//
//	accelerometer -fleet -shards 4 -batch 8 -fleet-requests 200 -seed 42
//
// With -live it measures instead of simulating: the named services burn
// real CPU work shaped by their calibrated Table 3 weights while a labeled
// CPU profile is collected in-process, and the measured functionality and
// leaf breakdowns are compared against the calibrated fleetdata weights
// (drift report on stdout; -drift-json for machine-readable output,
// -profile-out to keep the raw pprof profile):
//
//	accelerometer -live -live-services Cache1,Cache2 -drift-json drift.json
//
// With -record the fleet run additionally captures its request stream in
// the flight recorder and writes a binary trace file; -replay drives a
// recorded trace back through the simulator, and -replay-rpc issues it
// open-loop through the real RPC stack (an in-process echo server) at the
// recorded timestamps, optionally time-dilated:
//
//	accelerometer -fleet -record run.trace
//	accelerometer -replay run.trace
//	accelerometer -replay-rpc run.trace -dilate 0.1
//
// With -topology the binary drives a multi-tier service topology from a
// spec file: every node is a real RPC server on loopback, parents issue
// mid-request downstream calls per the fan-out spec, and an open-loop
// generator injects arrivals at the roots (synthetic -topo-qps schedule
// or a recorded trace via -topo-trace). The per-tier latency table with
// hop-by-hop tail amplification is printed alongside the composed
// Accelerometer model's predicted end-to-end latency reduction:
//
//	accelerometer -topology testdata/topologies/web.topo -topo-qps 200
//	accelerometer -topology web.topo -topo-trace run.trace -dilate 2
//	accelerometer -topology web.topo -topo-accel 8,10,10 -topo-accelerated
//
// With -async the serving path switches threading designs: offload points
// park their continuation on a completion-queue engine instead of holding
// a thread, so a small fixed worker pool drives arbitrarily many in-flight
// offloads (the paper's AsyncSameThread design). It applies to -replay-rpc
// (one engine-backed echo server with a simulated accelerator; the
// engine's gauges appear on /metrics and the dashboard) and to -topology
// (every node serves through its own engine and per-node accelerator at
// the -topo-accel offload parameters):
//
//	accelerometer -replay-rpc run.trace -async -async-workers 8 -debug-addr localhost:6060
//	accelerometer -topology web.topo -topo-accel 8,10,10 -async
//
// Any mode accepts -debug-addr to expose the observability endpoint
// (/metrics, /healthz, /debug/pprof/*, and a plain-text dashboard at /)
// for the duration of the run:
//
//	accelerometer -fleet -fleet-requests 100000 -debug-addr localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/debugserver"
	"repro/internal/fleet"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/liveprof"
	"repro/internal/pprofx"
	"repro/internal/record"
	"repro/internal/rpc"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/tailtrace"
	"repro/internal/telemetry"
	"repro/internal/textchart"
	"repro/internal/topology"
)

// sweepParams maps -sweep names to model parameters.
var sweepParams = map[string]core.SweepParam{
	"a": core.SweepA, "l": core.SweepL, "q": core.SweepQ,
	"o1": core.SweepO1, "alpha": core.SweepAlpha, "n": core.SweepN,
}

func main() {
	path := flag.String("config", "", "parameter file (\"-\" for stdin)")
	all := flag.Bool("all", false, "evaluate every threading design, not just the configured one")
	sweep := flag.String("sweep", "", "parameter to sweep (A, L, Q, o1, alpha, n)")
	values := flag.String("values", "", "comma-separated values for -sweep")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (\"-\" for stdout; load in Perfetto)")
	batch := flag.Float64("batch", 1, "rpc batch factor b >= 1: amortize fixed per-offload costs across b coalesced requests")
	fleetMode := flag.Bool("fleet", false, "simulate the sharded synthetic fleet instead of evaluating a -config model")
	shards := flag.Int("shards", 1, "fleet worker shards (with -fleet)")
	workers := flag.Int("workers", 0, "max goroutines running fleet shards; 0 = min(GOMAXPROCS, shards), 1 = sequential (with -fleet)")
	fleetRequests := flag.Int("fleet-requests", 200, "requests per service (with -fleet)")
	seed := flag.Uint64("seed", 42, "base workload seed (with -fleet)")
	debugAddr := flag.String("debug-addr", "", "serve the observability endpoint (/metrics, /healthz, /debug/pprof/) on this address for the run")
	liveMode := flag.Bool("live", false, "measure live CPU attribution of real burner execution instead of simulating")
	liveServices := flag.String("live-services", "", "comma-separated services to measure (with -live; default: all)")
	liveDuration := flag.Duration("live-duration", 1500*time.Millisecond, "wall-time burn budget per service (with -live)")
	liveHz := flag.Int("live-hz", 500, "CPU profile sampling rate in Hz (with -live; 0 = runtime default)")
	driftJSON := flag.String("drift-json", "", "write the measured-vs-calibrated drift report as JSON to this file (\"-\" for stdout; with -live)")
	profileOut := flag.String("profile-out", "", "write the raw collected CPU profile to this file (with -live)")
	recordPath := flag.String("record", "", "with -fleet: capture the request stream in the flight recorder and write a binary trace here")
	replayPath := flag.String("replay", "", "replay a recorded trace deterministically through the simulator")
	replayRPCPath := flag.String("replay-rpc", "", "replay a recorded trace open-loop through the real RPC stack (in-process echo server)")
	dilate := flag.Float64("dilate", 1, "time dilation for replay: >1 stretches recorded gaps, <1 compresses them")
	topoSpec := flag.String("topology", "", "drive a multi-tier service topology from this spec file (every node a real RPC server on loopback)")
	topoQPS := flag.Float64("topo-qps", 100, "open-loop arrival rate at the topology roots (with -topology)")
	topoRequests := flag.Int("topo-requests", 500, "arrivals to inject (with -topology)")
	topoPoisson := flag.Bool("topo-poisson", false, "draw Poisson inter-arrival gaps instead of uniform spacing (with -topology; seeded by -seed)")
	topoTrace := flag.String("topo-trace", "", "drive the topology from a recorded trace instead of the synthetic schedule (with -topology; honors -dilate)")
	topoAccel := flag.String("topo-accel", "8,10,10", "A,O0,L acceleration parameters for the composed-model prediction (with -topology)")
	topoAccelerated := flag.Bool("topo-accelerated", false, "run the live nodes at the -topo-accel offload cost instead of the baseline (with -topology)")
	tailTrace := flag.Bool("tail-trace", false, "collect request-centric spans across every tier and print the quantile-sliced tail-tax attribution (with -topology)")
	tailSample := flag.Int("tail-sample", 1, "keep 1 in N traces with -tail-trace (deterministic head sampling by trace ID)")
	tailExemplars := flag.Int("tail-exemplars", 3, "slowest requests retained as exemplars with -tail-trace; -trace-out exports their spans as a Chrome trace")
	asyncServe := flag.Bool("async", false, "serve offload points through the completion-queue engine (parked continuations) instead of blocking a thread (with -replay-rpc or -topology)")
	asyncWorkers := flag.Int("async-workers", 4, "completion-queue engine worker pool size (with -async)")
	offloadLatency := flag.Duration("offload-latency", time.Millisecond, "simulated accelerator latency per offload (with -replay-rpc -async)")
	flag.Parse()

	var rec *record.Recorder
	if *recordPath != "" {
		if !*fleetMode {
			fatal(fmt.Errorf("-record requires -fleet (the recorder hooks the fleet's request stream)"))
		}
		rec = record.NewRecorder(record.DefaultCapacity)
	}

	// The topology runner is constructed before the debug endpoint comes
	// up so its registry and live per-tier report are served for the whole
	// run, not just after the generator finishes.
	var topo *topologyRun
	if *topoSpec != "" {
		var err error
		if topo, err = newTopologyRun(*topoSpec, *topoAccel, *topoAccelerated, *asyncServe, *asyncWorkers, *tailTrace, *tailSample); err != nil {
			fatal(err)
		}
	}

	// The -replay-rpc -async engine is constructed before the debug
	// endpoint so its gauges register on /metrics and its counters feed
	// the dashboard's async panel for the whole replay.
	var asyncEng *rpc.Engine
	if *asyncServe && *replayRPCPath != "" {
		var err error
		if asyncEng, err = rpc.NewEngine(rpc.EngineConfig{Workers: *asyncWorkers}); err != nil {
			fatal(err)
		}
		defer asyncEng.Close() //modelcheck:ignore errdrop — process teardown after the replay completed
	}

	// The debug endpoint is opt-in and mode-independent: it serves the
	// run's registry when one exists and shuts down gracefully when the
	// chosen mode returns.
	var dbgReg *telemetry.Registry
	if *debugAddr != "" {
		dbgReg = telemetry.NewRegistry()
		dcfg := debugserver.Config{Addr: *debugAddr, Registry: dbgReg, Recorder: rec}
		if topo != nil {
			// Topology mode serves the runner's own registry so the
			// per-tier histograms appear on /metrics, plus the live
			// per-tier report on the dashboard.
			dbgReg = topo.reg
			dcfg.Registry = topo.reg
			dcfg.Topology = topo.runner
			if *asyncServe {
				dcfg.Async = topo.runner.AsyncStats
			}
			if topo.runner.Tracing() {
				dcfg.TailSpans = topo.runner.Spans
			}
		}
		if asyncEng != nil {
			if err := asyncEng.Instrument(dbgReg); err != nil {
				fatal(err)
			}
			dcfg.Async = asyncEng.Stats
		}
		dbg, err := debugserver.Start(dcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "accelerometer: debug endpoint on %s\n", dbg.URL())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := dbg.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "accelerometer: debug shutdown:", err)
			}
		}()
	}

	if *replayPath != "" {
		if err := runReplaySim(*replayPath, *dilate); err != nil {
			fatal(err)
		}
		return
	}
	if *replayRPCPath != "" {
		var err error
		if *asyncServe {
			err = runReplayRPCAsync(*replayRPCPath, *dilate, *offloadLatency, asyncEng)
		} else {
			err = runReplayRPC(*replayRPCPath, *dilate)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if topo != nil {
		load := topology.LoadConfig{QPS: *topoQPS, Requests: *topoRequests, Poisson: *topoPoisson, Seed: *seed}
		if *topoTrace != "" {
			tr, err := record.ReadFile(*topoTrace)
			if err != nil {
				fatal(err)
			}
			load.Trace = tr
			load.Dilate = *dilate
		}
		if err := topo.run(load, *metricsOut, *traceOut, *tailExemplars); err != nil {
			fatal(err)
		}
		return
	}
	if *liveMode {
		if err := runLive(*liveServices, *liveDuration, *liveHz, *seed, *driftJSON, *profileOut); err != nil {
			fatal(err)
		}
		return
	}
	if *fleetMode {
		if err := runFleet(*shards, *workers, *batch, *fleetRequests, *seed, *metricsOut, dbgReg, rec, *recordPath); err != nil {
			fatal(err)
		}
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry is optional: without the export flags both sinks stay nil
	// and the instrumented paths cost one nil check.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var evalTime *telemetry.Histogram
	var evals *telemetry.Counter
	if *metricsOut != "" || *traceOut != "" || dbgReg != nil {
		reg = dbgReg
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		tracer = telemetry.NewTracer("accelerometer")
		var terr error
		if evalTime, terr = reg.Histogram("accelerometer_eval_seconds", "wall time per design evaluation"); terr != nil {
			fatal(terr)
		}
		if evals, terr = reg.Counter("accelerometer_evals_total", "design evaluations performed"); terr != nil {
			fatal(terr)
		}
		defer func() {
			if *metricsOut != "" {
				if err := telemetry.WriteMetricsFile(*metricsOut, reg); err != nil {
					fatal(err)
				}
			}
			if *traceOut != "" {
				if err := telemetry.WriteTraceFile(*traceOut, tracer.Spans()); err != nil {
					fatal(err)
				}
			}
		}()
	}

	var in io.Reader
	if *path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sc, err := config.Parse(in)
	if err != nil {
		fatal(err)
	}
	m, err := core.New(sc.Params)
	if err != nil {
		fatal(err)
	}

	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("Accelerometer estimate for %s (%s, %s)\n\n", name, sc.Threading, sc.Strategy)

	if *sweep != "" {
		sp := tracer.Start("sweep/" + *sweep)
		err := runSweep(m, sc, *sweep, *values)
		sp.End()
		if err != nil {
			fatal(err)
		}
		return
	}

	designs := []core.Threading{sc.Threading}
	if *all {
		designs = core.Threadings
	}
	tb := textchart.NewTable("Threading", "Speedup", "Speedup %", "Latency reduction", "Latency %")
	for _, th := range designs {
		sp := tracer.Start("evaluate/" + th.String())
		t0 := time.Now()
		s, err := m.Speedup(th)
		if err != nil {
			fatal(err)
		}
		l, err := m.LatencyReduction(th, sc.Strategy)
		if err != nil {
			fatal(err)
		}
		evalTime.Record(time.Since(t0).Seconds())
		evals.Inc()
		sp.End()
		tb.AddRowf(th.String(), s, (s-1)*100, l, (l-1)*100)
	}
	fmt.Print(tb.Render())
	fmt.Printf("\nIdeal (Amdahl) bound at alpha=%g: %.4gx\n", sc.Params.Alpha, m.IdealSpeedup())

	if *batch > 1 {
		bm, err := m.Batched(*batch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nWith rpc batching at b=%g (fixed per-offload costs amortized):\n", *batch)
		bt := textchart.NewTable("Threading", "Speedup", "Speedup %", "Batching gain")
		for _, th := range designs {
			s, err := bm.Speedup(th)
			if err != nil {
				fatal(err)
			}
			gain, err := m.BatchSpeedupGain(th, *batch)
			if err != nil {
				fatal(err)
			}
			bt.AddRowf(th.String(), s, (s-1)*100, gain)
		}
		fmt.Print(bt.Render())
	}
}

// runLive measures live CPU attribution: the selected services burn real
// CPU work shaped by their calibrated Table 3 weights under an in-process
// labeled CPU profile, and the measured breakdowns are compared against
// the calibrated fleetdata weights.
func runLive(svcList string, duration time.Duration, hz int, seed uint64, driftJSON, profileOut string) error {
	var names []fleetdata.Service
	if strings.TrimSpace(svcList) == "" {
		names = fleetdata.Services
	} else {
		for _, raw := range strings.Split(svcList, ",") {
			names = append(names, fleetdata.Service(strings.TrimSpace(raw)))
		}
	}
	svcs := make([]*services.Service, 0, len(names))
	for _, n := range names {
		svc, err := services.New(n)
		if err != nil {
			return err
		}
		svcs = append(svcs, svc)
	}

	fmt.Printf("Live CPU attribution: %d services, %s burn each, %d Hz sampling\n\n",
		len(svcs), duration, hz)
	raw, err := liveprof.CollectBytes(hz, func() {
		for _, svc := range svcs {
			_, err := svc.Burn(context.Background(), services.BurnConfig{Duration: duration, Seed: seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "accelerometer: burn %s: %v\n", svc.Name, err)
			}
		}
	})
	if err != nil {
		return err
	}
	if profileOut != "" {
		if err := os.WriteFile(profileOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "accelerometer: wrote raw CPU profile to %s (%d bytes)\n", profileOut, len(raw))
	}
	p, err := pprofx.Parse(raw)
	if err != nil {
		return err
	}
	attr, err := liveprof.Attribute(p)
	if err != nil {
		return err
	}
	report, err := liveprof.BuildReport(attr)
	if err != nil {
		return err
	}
	if err := report.WriteText(os.Stdout); err != nil {
		return err
	}
	if driftJSON != "" {
		if err := report.WriteJSONFile(driftJSON); err != nil {
			return err
		}
		if driftJSON != "-" {
			fmt.Fprintf(os.Stderr, "accelerometer: wrote drift report to %s\n", driftJSON)
		}
	}
	return nil
}

// runFleet drives the sharded synthetic-fleet simulation, optionally
// capturing the request stream into a trace file via the flight recorder.
func runFleet(shards, workers int, batch float64, requests int, seed uint64, metricsOut string, reg *telemetry.Registry, rec *record.Recorder, recordPath string) error {
	if reg == nil && metricsOut != "" {
		reg = telemetry.NewRegistry()
	}
	cfg := fleet.Config{
		Shards:             shards,
		MaxWorkers:         workers,
		Seed:               seed,
		RequestsPerService: requests,
		Batch:              batch,
		Accel: &sim.Accel{
			Threading: core.Sync,
			Strategy:  core.OffChip,
			A:         10,
			O0:        500,
			L:         300,
			Servers:   2,
		},
		Telemetry: reg,
		Recorder:  rec,
	}
	r, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	if rec != nil {
		n, err := rec.WriteFile(recordPath)
		if err != nil {
			return err
		}
		st := rec.State()
		fmt.Fprintf(os.Stderr, "accelerometer: recorded %d events (%d dropped) to %s (%d bytes)\n",
			st.Total, st.Dropped, recordPath, n)
	}
	fmt.Printf("Sharded fleet simulation: %d services, %d shards, batch b=%g, seed %d\n\n",
		len(r.Services), r.Shards, r.Batch, seed)
	tb := textchart.NewTable("Service", "Kernel", "Shard", "QPS", "p50 cycles", "p99 cycles", "Offloads")
	for _, sr := range r.Services {
		tb.AddRowf(string(sr.Service), sr.Kind.String(), sr.Shard,
			sr.Result.ThroughputQPS, sr.Result.P50Latency, sr.Result.P99Latency, sr.Result.Offloads)
	}
	fmt.Print(tb.Render())
	a := r.Aggregate
	fmt.Printf("\nFleet aggregate: %d requests, %.4g QPS, p50 %.4g / p95 %.4g / p99 %.4g cycles, %d offloads\n",
		a.Completed, a.ThroughputQPS, a.P50Latency, a.P95Latency, a.P99Latency, a.Offloads)
	if metricsOut != "" {
		return telemetry.WriteMetricsFile(metricsOut, reg)
	}
	return nil
}

// runReplaySim replays a recorded trace deterministically through the
// simulator: each recorded service becomes one simulated server driven by
// the trace's explicit arrival schedule instead of a Poisson process.
func runReplaySim(path string, dilate float64) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := record.ReplaySim(tr, record.SimReplayConfig{Dilate: dilate})
	if err != nil {
		return err
	}
	fmt.Printf("Trace replay (sim): %s — %d events, %d services, %s recorded span, dilation %g\n\n",
		path, len(tr.Events), len(tr.Services), tr.Duration(), dilate)
	tb := textchart.NewTable("Service", "Requests", "QPS", "p50 cycles", "p99 cycles", "Offloads")
	for _, sr := range res.PerService {
		tb.AddRowf(sr.Service, sr.Requests,
			sr.Result.ThroughputQPS, sr.Result.P50Latency, sr.Result.P99Latency, sr.Result.Offloads)
	}
	fmt.Print(tb.Render())
	a := res.Aggregate
	fmt.Printf("\nReplay aggregate: %d requests, %.4g QPS, p50 %.4g / p95 %.4g / p99 %.4g cycles, %d offloads\n",
		a.Completed, a.ThroughputQPS, a.P50Latency, a.P95Latency, a.P99Latency, a.Offloads)
	return nil
}

// runReplayRPC replays a recorded trace open-loop through the real RPC
// stack: requests are issued against an in-process echo server at the
// recorded (dilated) timestamps with the recorded payload sizes.
func runReplayRPC(path string, dilate float64) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	echo := func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{Method: req.Method, Payload: req.Payload}, nil
	}
	srv, err := rpc.NewServer(echo, nil)
	if err != nil {
		return err
	}
	defer srv.Close() //modelcheck:ignore errdrop — in-process teardown after the replay completed
	serveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(serveCtx, serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		return err
	}
	defer client.Close() //modelcheck:ignore errdrop — pipe close on teardown

	reg := telemetry.NewRegistry()
	hist, err := reg.Histogram("replay_latency_nanos", "per-call replay latency in nanoseconds")
	if err != nil {
		return err
	}
	stats, err := record.ReplayRPC(context.Background(), tr,
		record.SerializeCalls(client.CallContext),
		record.RPCReplayConfig{Dilate: dilate, Latency: hist})
	if err != nil {
		return err
	}
	snap := hist.Snapshot()
	fmt.Printf("Trace replay (rpc): %s — %d events, %s recorded span, dilation %g\n\n",
		path, len(tr.Events), tr.Duration(), dilate)
	tb := textchart.NewTable("Metric", "Value")
	tb.AddRowf("Requests issued", stats.Issued)
	tb.AddRowf("Errors", stats.Errors)
	tb.AddRowf("Replay wall time", stats.Duration.Seconds())
	tb.AddRowf("Max issue lag (ms)", float64(stats.MaxLagNanos)/1e6)
	tb.AddRowf("p50 latency (ms)", snap.Quantile(0.5)/1e6)
	tb.AddRowf("p99 latency (ms)", snap.Quantile(0.99)/1e6)
	fmt.Print(tb.Render())
	return nil
}

// replayEchoResume acknowledges a completed replay offload from the
// pooled request state; package-level so parking allocates no closure.
var replayEchoResume rpc.ResumeFunc = func(_ context.Context, ac *rpc.AsyncCall) (rpc.Message, error) {
	req := ac.Request()
	return rpc.Message{Method: req.Method, Payload: req.Payload}, nil
}

// runReplayRPCAsync replays a recorded trace open-loop against an
// engine-backed echo server: every request parks on a simulated
// accelerator for -offload-latency and a fixed worker pool drives all
// in-flight offloads — the AsyncSameThread serving path under a real
// recorded arrival process.
func runReplayRPCAsync(path string, dilate float64, offloadLatency time.Duration, eng *rpc.Engine) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: offloadLatency})
	if err != nil {
		return err
	}
	defer dev.Close() //modelcheck:ignore errdrop — in-process teardown after the replay completed
	park := func(_ context.Context, req rpc.Message, ac *rpc.AsyncCall) (rpc.Message, error) {
		if err := ac.Park(dev, uint64(len(req.Payload)), replayEchoResume); err != nil {
			return rpc.Message{}, err
		}
		return rpc.Message{}, nil
	}
	srv, err := rpc.NewAsyncServer(park, eng, nil)
	if err != nil {
		return err
	}
	defer srv.Close() //modelcheck:ignore errdrop — in-process teardown after the replay completed
	serveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(serveCtx, serverConn)
	client, err := rpc.NewMuxClient(clientConn, nil)
	if err != nil {
		return err
	}
	defer client.Close() //modelcheck:ignore errdrop — pipe close on teardown

	reg := telemetry.NewRegistry()
	hist, err := reg.Histogram("replay_latency_nanos", "per-call replay latency in nanoseconds")
	if err != nil {
		return err
	}
	stats, err := record.ReplayRPC(context.Background(), tr,
		client.CallContext,
		record.RPCReplayConfig{Dilate: dilate, Latency: hist})
	if err != nil {
		return err
	}
	snap := hist.Snapshot()
	es := eng.Stats()
	fmt.Printf("Trace replay (rpc, async serving): %s — %d events, %s recorded span, dilation %g, %d engine workers, offload latency %s\n\n",
		path, len(tr.Events), tr.Duration(), dilate, es.Workers, offloadLatency)
	tb := textchart.NewTable("Metric", "Value")
	tb.AddRowf("Requests issued", stats.Issued)
	tb.AddRowf("Errors", stats.Errors)
	tb.AddRowf("Replay wall time", stats.Duration.Seconds())
	tb.AddRowf("Max issue lag (ms)", float64(stats.MaxLagNanos)/1e6)
	tb.AddRowf("p50 latency (ms)", snap.Quantile(0.5)/1e6)
	tb.AddRowf("p99 latency (ms)", snap.Quantile(0.99)/1e6)
	tb.AddRowf("Engine served", es.Served)
	tb.AddRowf("Engine errors", es.Errors)
	fmt.Print(tb.Render())
	return nil
}

// topologyRun bundles the -topology mode's long-lived pieces: the parsed
// graph, the live runner, its registry (served on -debug-addr and written
// by -metrics-out), and the acceleration parameters for the composed
// model.
type topologyRun struct {
	graph  *topology.Graph
	runner *topology.Runner
	accel  topology.AccelConfig
	reg    *telemetry.Registry
}

// parseAccelSpec parses the -topo-accel "A,O0,L" triple.
func parseAccelSpec(s string) (topology.AccelConfig, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return topology.AccelConfig{}, fmt.Errorf("-topo-accel wants \"A,O0,L\", got %q", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return topology.AccelConfig{}, fmt.Errorf("-topo-accel element %d: %v", i+1, err)
		}
		vals[i] = v
	}
	return topology.AccelConfig{A: vals[0], O0: vals[1], L: vals[2]}, nil
}

func newTopologyRun(specPath, accelSpec string, accelerated, async bool, asyncWorkers int, tailTrace bool, tailSample int) (*topologyRun, error) {
	g, err := topology.ParseSpecFile(specPath)
	if err != nil {
		return nil, err
	}
	accel, err := parseAccelSpec(accelSpec)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	rcfg := topology.RunnerConfig{Registry: reg}
	if accelerated || async {
		rcfg.Accel = &accel
	}
	if async {
		rcfg.Async = true
		rcfg.AsyncWorkers = asyncWorkers
	}
	if tailTrace {
		rcfg.Trace = true
		rcfg.TraceSampleRate = tailSample
	}
	r, err := topology.NewRunner(g, rcfg)
	if err != nil {
		return nil, err
	}
	return &topologyRun{graph: g, runner: r, accel: accel, reg: reg}, nil
}

// run starts the topology's servers, injects the open-loop arrival
// stream, and prints the measured per-tier table next to the composed
// Accelerometer model's prediction for the same graph. With -tail-trace
// it also prints the quantile-sliced critical-path attribution, the
// predicted-vs-measured path composition, and (with -trace-out) exports
// the slowest requests' trace trees.
func (t *topologyRun) run(load topology.LoadConfig, metricsOut, traceOut string, exemplars int) error {
	ctx := context.Background()
	if err := t.runner.Start(ctx); err != nil {
		return err
	}
	defer t.runner.Close() //modelcheck:ignore errdrop — idempotent repeat of the explicit Close below
	stats, err := t.runner.RunOpenLoop(ctx, load)
	if err != nil {
		return err
	}
	if err := t.runner.ServeErr(); err != nil {
		return err
	}
	if err := t.runner.Close(); err != nil {
		return err
	}
	rep := t.runner.Report()
	fmt.Printf("Topology %s: %d tiers, %d issued, %d errors, %s wall time, max lag %.3g ms\n\n",
		rep.Name, len(rep.Tiers), stats.Issued, stats.Errors,
		stats.Duration.Round(time.Millisecond), float64(stats.MaxLagNanos)/1e6)
	tb := textchart.NewTable("Node", "Depth", "Requests", "Errors", "p50 ms", "p99 ms", "Tail amp")
	for _, ts := range rep.Tiers {
		tb.AddRow(ts.Node, strconv.Itoa(ts.Depth),
			strconv.FormatUint(ts.Requests, 10), strconv.FormatUint(ts.Errors, 10),
			fmt.Sprintf("%.4g", ts.P50Nanos/1e6), fmt.Sprintf("%.4g", ts.P99Nanos/1e6),
			fmt.Sprintf("%.2fx", ts.Amplification))
	}
	fmt.Print(tb.Render())
	fmt.Printf("\nEnd to end: %d requests, p50 %.4g ms, p99 %.4g ms\n",
		rep.E2ERequests, rep.E2EP50Nanos/1e6, rep.E2EP99Nanos/1e6)

	p, err := topology.Predict(t.graph, t.accel)
	if err != nil {
		return err
	}
	fmt.Printf("\nComposed model (A=%g, o0=%g, L=%g):\n\n", t.accel.A, t.accel.O0, t.accel.L)
	mt := textchart.NewTable("Node", "alpha", "Latency reduction")
	for _, np := range p.PerNode {
		mt.AddRow(np.Node, fmt.Sprintf("%.3f", np.Alpha), fmt.Sprintf("%.3fx", np.Reduction))
	}
	fmt.Print(mt.Render())
	fmt.Printf("\nCritical path %s: predicted e2e latency reduction %.3fx (%.4g -> %.4g units)\n",
		strings.Join(p.CriticalPath, " -> "), p.E2EReduction, p.BaselineUnits, p.AccelUnits)

	if t.runner.Tracing() {
		if err := t.printTailTax(p, traceOut, exemplars); err != nil {
			return err
		}
	}

	if metricsOut != "" {
		return telemetry.WriteMetricsFile(metricsOut, t.reg)
	}
	return nil
}

// printTailTax analyzes the run's collected spans into the tail-tax
// report: where each latency quantile's nanoseconds went, how the
// measured critical-path composition compares with the composed model's
// prediction, and which requests were slowest.
func (t *topologyRun) printTailTax(p *topology.Prediction, traceOut string, exemplars int) error {
	rep := tailtrace.Analyze(t.runner.Spans(), tailtrace.Options{Exemplars: exemplars})
	ts := t.runner.TraceStats()
	fmt.Printf("\n")
	var sb strings.Builder
	rep.RenderText(&sb)
	sb.WriteString("\n")
	tailtrace.RenderModelDiff(&sb, rep.CompareModel(p.CriticalPath, p.PathWeights))
	fmt.Print(sb.String())
	if ts.Dropped > 0 || ts.SampledOut > 0 {
		fmt.Printf("(%d spans evicted, %d traces sampled out)\n", ts.Dropped, ts.SampledOut)
	}
	if len(rep.Exemplars) > 0 {
		fmt.Printf("\nSlowest requests:\n")
		for _, ex := range rep.Exemplars {
			fmt.Printf("  trace %016x  %10.3f ms", ex.TraceID, float64(ex.Total)/1e6)
			for _, c := range rep.Categories {
				if d := ex.Tax.ByCategory[c]; d > 0 {
					fmt.Printf("  %s %.3f", c, float64(d)/1e6)
				}
			}
			fmt.Println()
		}
	}
	if traceOut != "" {
		var spans []telemetry.SpanData
		for _, ex := range rep.Exemplars {
			spans = append(spans, ex.Spans...)
		}
		if err := telemetry.WriteTraceFile(traceOut, spans); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d exemplar spans to %s\n", len(spans), traceOut)
	}
	return nil
}

// runSweep evaluates the configured design over a parameter range.
func runSweep(m *core.Model, sc config.Scenario, param, values string) error {
	p, ok := sweepParams[strings.ToLower(strings.TrimSpace(param))]
	if !ok {
		return fmt.Errorf("unknown sweep parameter %q (want A, L, Q, o1, alpha, or n)", param)
	}
	if values == "" {
		return fmt.Errorf("-sweep requires -values (comma-separated numbers)")
	}
	var vals []float64
	for _, raw := range strings.Split(values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return fmt.Errorf("invalid sweep value %q", raw)
		}
		vals = append(vals, v)
	}
	points, err := m.Sweep(p, sc.Threading, sc.Strategy, vals)
	if err != nil {
		return err
	}
	tb := textchart.NewTable(p.String(), "Speedup %", "Latency reduction %")
	for _, pt := range points {
		tb.AddRowf(pt.Value, (pt.Speedup-1)*100, (pt.LatencyReduction-1)*100)
	}
	fmt.Print(tb.Render())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accelerometer:", err)
	os.Exit(1)
}
