// Command accelerometer mirrors the paper's artifact workflow: read model
// parameters from a key=value configuration file and print the estimated
// throughput speedup and per-request latency reduction for the configured
// threading design — plus, with -all, every other design for comparison.
//
// Usage:
//
//	accelerometer -config case1.conf
//	accelerometer -config case1.conf -all
//	accelerometer -config case1.conf -batch 8
//	accelerometer -config case1.conf -sweep A -values 1,2,5,10,50
//	echo 'C=2e9
//	alpha=0.165844
//	n=298951
//	o0=10
//	L=3
//	A=6' | accelerometer -config -
//
// With -fleet it instead drives the sharded synthetic-fleet simulation
// (internal/fleet): the eight characterized services run across -shards
// workers, optionally with the batched offload path (-batch), and the
// per-service plus aggregate results are printed:
//
//	accelerometer -fleet -shards 4 -batch 8 -fleet-requests 200 -seed 42
//
// With -live it measures instead of simulating: the named services burn
// real CPU work shaped by their calibrated Table 3 weights while a labeled
// CPU profile is collected in-process, and the measured functionality and
// leaf breakdowns are compared against the calibrated fleetdata weights
// (drift report on stdout; -drift-json for machine-readable output,
// -profile-out to keep the raw pprof profile):
//
//	accelerometer -live -live-services Cache1,Cache2 -drift-json drift.json
//
// With -record the fleet run additionally captures its request stream in
// the flight recorder and writes a binary trace file; -replay drives a
// recorded trace back through the simulator, and -replay-rpc issues it
// open-loop through the real RPC stack (an in-process echo server) at the
// recorded timestamps, optionally time-dilated:
//
//	accelerometer -fleet -record run.trace
//	accelerometer -replay run.trace
//	accelerometer -replay-rpc run.trace -dilate 0.1
//
// Any mode accepts -debug-addr to expose the observability endpoint
// (/metrics, /healthz, /debug/pprof/*, and a plain-text dashboard at /)
// for the duration of the run:
//
//	accelerometer -fleet -fleet-requests 100000 -debug-addr localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/debugserver"
	"repro/internal/fleet"
	"repro/internal/fleetdata"
	"repro/internal/liveprof"
	"repro/internal/pprofx"
	"repro/internal/record"
	"repro/internal/rpc"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/textchart"
)

// sweepParams maps -sweep names to model parameters.
var sweepParams = map[string]core.SweepParam{
	"a": core.SweepA, "l": core.SweepL, "q": core.SweepQ,
	"o1": core.SweepO1, "alpha": core.SweepAlpha, "n": core.SweepN,
}

func main() {
	path := flag.String("config", "", "parameter file (\"-\" for stdin)")
	all := flag.Bool("all", false, "evaluate every threading design, not just the configured one")
	sweep := flag.String("sweep", "", "parameter to sweep (A, L, Q, o1, alpha, n)")
	values := flag.String("values", "", "comma-separated values for -sweep")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (\"-\" for stdout; load in Perfetto)")
	batch := flag.Float64("batch", 1, "rpc batch factor b >= 1: amortize fixed per-offload costs across b coalesced requests")
	fleetMode := flag.Bool("fleet", false, "simulate the sharded synthetic fleet instead of evaluating a -config model")
	shards := flag.Int("shards", 1, "fleet worker shards (with -fleet)")
	workers := flag.Int("workers", 0, "max goroutines running fleet shards; 0 = min(GOMAXPROCS, shards), 1 = sequential (with -fleet)")
	fleetRequests := flag.Int("fleet-requests", 200, "requests per service (with -fleet)")
	seed := flag.Uint64("seed", 42, "base workload seed (with -fleet)")
	debugAddr := flag.String("debug-addr", "", "serve the observability endpoint (/metrics, /healthz, /debug/pprof/) on this address for the run")
	liveMode := flag.Bool("live", false, "measure live CPU attribution of real burner execution instead of simulating")
	liveServices := flag.String("live-services", "", "comma-separated services to measure (with -live; default: all)")
	liveDuration := flag.Duration("live-duration", 1500*time.Millisecond, "wall-time burn budget per service (with -live)")
	liveHz := flag.Int("live-hz", 500, "CPU profile sampling rate in Hz (with -live; 0 = runtime default)")
	driftJSON := flag.String("drift-json", "", "write the measured-vs-calibrated drift report as JSON to this file (\"-\" for stdout; with -live)")
	profileOut := flag.String("profile-out", "", "write the raw collected CPU profile to this file (with -live)")
	recordPath := flag.String("record", "", "with -fleet: capture the request stream in the flight recorder and write a binary trace here")
	replayPath := flag.String("replay", "", "replay a recorded trace deterministically through the simulator")
	replayRPCPath := flag.String("replay-rpc", "", "replay a recorded trace open-loop through the real RPC stack (in-process echo server)")
	dilate := flag.Float64("dilate", 1, "time dilation for replay: >1 stretches recorded gaps, <1 compresses them")
	flag.Parse()

	var rec *record.Recorder
	if *recordPath != "" {
		if !*fleetMode {
			fatal(fmt.Errorf("-record requires -fleet (the recorder hooks the fleet's request stream)"))
		}
		rec = record.NewRecorder(record.DefaultCapacity)
	}

	// The debug endpoint is opt-in and mode-independent: it serves the
	// run's registry when one exists and shuts down gracefully when the
	// chosen mode returns.
	var dbgReg *telemetry.Registry
	if *debugAddr != "" {
		dbgReg = telemetry.NewRegistry()
		dbg, err := debugserver.Start(debugserver.Config{Addr: *debugAddr, Registry: dbgReg, Recorder: rec})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "accelerometer: debug endpoint on %s\n", dbg.URL())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := dbg.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "accelerometer: debug shutdown:", err)
			}
		}()
	}

	if *replayPath != "" {
		if err := runReplaySim(*replayPath, *dilate); err != nil {
			fatal(err)
		}
		return
	}
	if *replayRPCPath != "" {
		if err := runReplayRPC(*replayRPCPath, *dilate); err != nil {
			fatal(err)
		}
		return
	}
	if *liveMode {
		if err := runLive(*liveServices, *liveDuration, *liveHz, *seed, *driftJSON, *profileOut); err != nil {
			fatal(err)
		}
		return
	}
	if *fleetMode {
		if err := runFleet(*shards, *workers, *batch, *fleetRequests, *seed, *metricsOut, dbgReg, rec, *recordPath); err != nil {
			fatal(err)
		}
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry is optional: without the export flags both sinks stay nil
	// and the instrumented paths cost one nil check.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var evalTime *telemetry.Histogram
	var evals *telemetry.Counter
	if *metricsOut != "" || *traceOut != "" || dbgReg != nil {
		reg = dbgReg
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		tracer = telemetry.NewTracer("accelerometer")
		var terr error
		if evalTime, terr = reg.Histogram("accelerometer_eval_seconds", "wall time per design evaluation"); terr != nil {
			fatal(terr)
		}
		if evals, terr = reg.Counter("accelerometer_evals_total", "design evaluations performed"); terr != nil {
			fatal(terr)
		}
		defer func() {
			if *metricsOut != "" {
				if err := telemetry.WriteMetricsFile(*metricsOut, reg); err != nil {
					fatal(err)
				}
			}
			if *traceOut != "" {
				if err := telemetry.WriteTraceFile(*traceOut, tracer.Spans()); err != nil {
					fatal(err)
				}
			}
		}()
	}

	var in io.Reader
	if *path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sc, err := config.Parse(in)
	if err != nil {
		fatal(err)
	}
	m, err := core.New(sc.Params)
	if err != nil {
		fatal(err)
	}

	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("Accelerometer estimate for %s (%s, %s)\n\n", name, sc.Threading, sc.Strategy)

	if *sweep != "" {
		sp := tracer.Start("sweep/" + *sweep)
		err := runSweep(m, sc, *sweep, *values)
		sp.End()
		if err != nil {
			fatal(err)
		}
		return
	}

	designs := []core.Threading{sc.Threading}
	if *all {
		designs = core.Threadings
	}
	tb := textchart.NewTable("Threading", "Speedup", "Speedup %", "Latency reduction", "Latency %")
	for _, th := range designs {
		sp := tracer.Start("evaluate/" + th.String())
		t0 := time.Now()
		s, err := m.Speedup(th)
		if err != nil {
			fatal(err)
		}
		l, err := m.LatencyReduction(th, sc.Strategy)
		if err != nil {
			fatal(err)
		}
		evalTime.Record(time.Since(t0).Seconds())
		evals.Inc()
		sp.End()
		tb.AddRowf(th.String(), s, (s-1)*100, l, (l-1)*100)
	}
	fmt.Print(tb.Render())
	fmt.Printf("\nIdeal (Amdahl) bound at alpha=%g: %.4gx\n", sc.Params.Alpha, m.IdealSpeedup())

	if *batch > 1 {
		bm, err := m.Batched(*batch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nWith rpc batching at b=%g (fixed per-offload costs amortized):\n", *batch)
		bt := textchart.NewTable("Threading", "Speedup", "Speedup %", "Batching gain")
		for _, th := range designs {
			s, err := bm.Speedup(th)
			if err != nil {
				fatal(err)
			}
			gain, err := m.BatchSpeedupGain(th, *batch)
			if err != nil {
				fatal(err)
			}
			bt.AddRowf(th.String(), s, (s-1)*100, gain)
		}
		fmt.Print(bt.Render())
	}
}

// runLive measures live CPU attribution: the selected services burn real
// CPU work shaped by their calibrated Table 3 weights under an in-process
// labeled CPU profile, and the measured breakdowns are compared against
// the calibrated fleetdata weights.
func runLive(svcList string, duration time.Duration, hz int, seed uint64, driftJSON, profileOut string) error {
	var names []fleetdata.Service
	if strings.TrimSpace(svcList) == "" {
		names = fleetdata.Services
	} else {
		for _, raw := range strings.Split(svcList, ",") {
			names = append(names, fleetdata.Service(strings.TrimSpace(raw)))
		}
	}
	svcs := make([]*services.Service, 0, len(names))
	for _, n := range names {
		svc, err := services.New(n)
		if err != nil {
			return err
		}
		svcs = append(svcs, svc)
	}

	fmt.Printf("Live CPU attribution: %d services, %s burn each, %d Hz sampling\n\n",
		len(svcs), duration, hz)
	raw, err := liveprof.CollectBytes(hz, func() {
		for _, svc := range svcs {
			_, err := svc.Burn(context.Background(), services.BurnConfig{Duration: duration, Seed: seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "accelerometer: burn %s: %v\n", svc.Name, err)
			}
		}
	})
	if err != nil {
		return err
	}
	if profileOut != "" {
		if err := os.WriteFile(profileOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "accelerometer: wrote raw CPU profile to %s (%d bytes)\n", profileOut, len(raw))
	}
	p, err := pprofx.Parse(raw)
	if err != nil {
		return err
	}
	attr, err := liveprof.Attribute(p)
	if err != nil {
		return err
	}
	report, err := liveprof.BuildReport(attr)
	if err != nil {
		return err
	}
	if err := report.WriteText(os.Stdout); err != nil {
		return err
	}
	if driftJSON != "" {
		if err := report.WriteJSONFile(driftJSON); err != nil {
			return err
		}
		if driftJSON != "-" {
			fmt.Fprintf(os.Stderr, "accelerometer: wrote drift report to %s\n", driftJSON)
		}
	}
	return nil
}

// runFleet drives the sharded synthetic-fleet simulation, optionally
// capturing the request stream into a trace file via the flight recorder.
func runFleet(shards, workers int, batch float64, requests int, seed uint64, metricsOut string, reg *telemetry.Registry, rec *record.Recorder, recordPath string) error {
	if reg == nil && metricsOut != "" {
		reg = telemetry.NewRegistry()
	}
	cfg := fleet.Config{
		Shards:             shards,
		MaxWorkers:         workers,
		Seed:               seed,
		RequestsPerService: requests,
		Batch:              batch,
		Accel: &sim.Accel{
			Threading: core.Sync,
			Strategy:  core.OffChip,
			A:         10,
			O0:        500,
			L:         300,
			Servers:   2,
		},
		Telemetry: reg,
		Recorder:  rec,
	}
	r, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	if rec != nil {
		n, err := rec.WriteFile(recordPath)
		if err != nil {
			return err
		}
		st := rec.State()
		fmt.Fprintf(os.Stderr, "accelerometer: recorded %d events (%d dropped) to %s (%d bytes)\n",
			st.Total, st.Dropped, recordPath, n)
	}
	fmt.Printf("Sharded fleet simulation: %d services, %d shards, batch b=%g, seed %d\n\n",
		len(r.Services), r.Shards, r.Batch, seed)
	tb := textchart.NewTable("Service", "Kernel", "Shard", "QPS", "p50 cycles", "p99 cycles", "Offloads")
	for _, sr := range r.Services {
		tb.AddRowf(string(sr.Service), sr.Kind.String(), sr.Shard,
			sr.Result.ThroughputQPS, sr.Result.P50Latency, sr.Result.P99Latency, sr.Result.Offloads)
	}
	fmt.Print(tb.Render())
	a := r.Aggregate
	fmt.Printf("\nFleet aggregate: %d requests, %.4g QPS, p50 %.4g / p95 %.4g / p99 %.4g cycles, %d offloads\n",
		a.Completed, a.ThroughputQPS, a.P50Latency, a.P95Latency, a.P99Latency, a.Offloads)
	if metricsOut != "" {
		return telemetry.WriteMetricsFile(metricsOut, reg)
	}
	return nil
}

// runReplaySim replays a recorded trace deterministically through the
// simulator: each recorded service becomes one simulated server driven by
// the trace's explicit arrival schedule instead of a Poisson process.
func runReplaySim(path string, dilate float64) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := record.ReplaySim(tr, record.SimReplayConfig{Dilate: dilate})
	if err != nil {
		return err
	}
	fmt.Printf("Trace replay (sim): %s — %d events, %d services, %s recorded span, dilation %g\n\n",
		path, len(tr.Events), len(tr.Services), tr.Duration(), dilate)
	tb := textchart.NewTable("Service", "Requests", "QPS", "p50 cycles", "p99 cycles", "Offloads")
	for _, sr := range res.PerService {
		tb.AddRowf(sr.Service, sr.Requests,
			sr.Result.ThroughputQPS, sr.Result.P50Latency, sr.Result.P99Latency, sr.Result.Offloads)
	}
	fmt.Print(tb.Render())
	a := res.Aggregate
	fmt.Printf("\nReplay aggregate: %d requests, %.4g QPS, p50 %.4g / p95 %.4g / p99 %.4g cycles, %d offloads\n",
		a.Completed, a.ThroughputQPS, a.P50Latency, a.P95Latency, a.P99Latency, a.Offloads)
	return nil
}

// runReplayRPC replays a recorded trace open-loop through the real RPC
// stack: requests are issued against an in-process echo server at the
// recorded (dilated) timestamps with the recorded payload sizes.
func runReplayRPC(path string, dilate float64) error {
	tr, err := record.ReadFile(path)
	if err != nil {
		return err
	}
	echo := func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{Method: req.Method, Payload: req.Payload}, nil
	}
	srv, err := rpc.NewServer(echo, nil)
	if err != nil {
		return err
	}
	defer srv.Close() //modelcheck:ignore errdrop — in-process teardown after the replay completed
	serveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(serveCtx, serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		return err
	}
	defer client.Close() //modelcheck:ignore errdrop — pipe close on teardown

	reg := telemetry.NewRegistry()
	hist, err := reg.Histogram("replay_latency_nanos", "per-call replay latency in nanoseconds")
	if err != nil {
		return err
	}
	stats, err := record.ReplayRPC(context.Background(), tr,
		record.SerializeCalls(client.CallContext),
		record.RPCReplayConfig{Dilate: dilate, Latency: hist})
	if err != nil {
		return err
	}
	snap := hist.Snapshot()
	fmt.Printf("Trace replay (rpc): %s — %d events, %s recorded span, dilation %g\n\n",
		path, len(tr.Events), tr.Duration(), dilate)
	tb := textchart.NewTable("Metric", "Value")
	tb.AddRowf("Requests issued", stats.Issued)
	tb.AddRowf("Errors", stats.Errors)
	tb.AddRowf("Replay wall time", stats.Duration.Seconds())
	tb.AddRowf("Max issue lag (ms)", float64(stats.MaxLagNanos)/1e6)
	tb.AddRowf("p50 latency (ms)", snap.Quantile(0.5)/1e6)
	tb.AddRowf("p99 latency (ms)", snap.Quantile(0.99)/1e6)
	fmt.Print(tb.Render())
	return nil
}

// runSweep evaluates the configured design over a parameter range.
func runSweep(m *core.Model, sc config.Scenario, param, values string) error {
	p, ok := sweepParams[strings.ToLower(strings.TrimSpace(param))]
	if !ok {
		return fmt.Errorf("unknown sweep parameter %q (want A, L, Q, o1, alpha, or n)", param)
	}
	if values == "" {
		return fmt.Errorf("-sweep requires -values (comma-separated numbers)")
	}
	var vals []float64
	for _, raw := range strings.Split(values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return fmt.Errorf("invalid sweep value %q", raw)
		}
		vals = append(vals, v)
	}
	points, err := m.Sweep(p, sc.Threading, sc.Strategy, vals)
	if err != nil {
		return err
	}
	tb := textchart.NewTable(p.String(), "Speedup %", "Latency reduction %")
	for _, pt := range points {
		tb.AddRowf(pt.Value, (pt.Speedup-1)*100, (pt.LatencyReduction-1)*100)
	}
	fmt.Print(tb.Render())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accelerometer:", err)
	os.Exit(1)
}
