package main

import (
	"context"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/rpc"
)

// The async counterpart of measured_model_test.go: drive the
// completion-queue serving path with a known split of synthetic work
// units and check both async equations against wall-clock measurements.
//
//	baseline     = nk + k units, inline on an engine worker
//	async host   = nk + o0 + L units, then park; the device covers k/A
//	               units of wall time while the worker serves others
//	null         = 0 units inline — pure stack overhead, subtracted
//
// Throughput at high in-flight count validates equation (6) for the
// AsyncSameThread design (the worker is only charged the host share);
// serial p50 latency validates equation (8) (the request still waits out
// the device's k/A on its own critical path). Constants are shared with
// the sync measured-vs-model test so the unit system is identical.

// asyncSpinSink defeats dead-code elimination; engine workers spin
// concurrently, hence the atomic (unlike measured_model_test's serial
// spin).
var asyncSpinSink atomic.Uint64

// asyncSpin burns the same deterministic per-unit cost as spin().
func asyncSpin(units int) {
	x := uint64(2463534242)
	for i := 0; i < units*5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	asyncSpinSink.Add(x)
}

// calibrateUnit returns the measured wall time of one spin unit (the
// minimum over a few trials, so scheduler preemption inflates nothing).
func calibrateUnit() time.Duration {
	const units = 200
	best := time.Duration(math.MaxInt64)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		asyncSpin(units)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best / units
}

// asyncModelResume echoes the parked request once the device completes;
// package-level so parking allocates no closure.
var asyncModelResume rpc.ResumeFunc = func(_ context.Context, ac *rpc.AsyncCall) (rpc.Message, error) {
	req := ac.Request()
	return rpc.Message{Method: req.Method, Payload: req.Payload}, nil
}

// startAsyncMeasureServer serves one measurement arm: hostUnits of spin
// on the engine worker, then either an inline response or a park for
// devLatency. Returns a mux client wired to it.
func startAsyncMeasureServer(t *testing.T, hostUnits int, park bool, devLatency time.Duration, workers int) *rpc.MuxClient {
	t.Helper()
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: devLatency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() }) // errors swallowed per the teardown rule
	eng, err := rpc.NewEngine(rpc.EngineConfig{Workers: workers, Queue: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() }) // errors swallowed per the teardown rule
	h := func(_ context.Context, req rpc.Message, ac *rpc.AsyncCall) (rpc.Message, error) {
		asyncSpin(hostUnits)
		if !park {
			return rpc.Message{Method: req.Method, Payload: req.Payload}, nil
		}
		if err := ac.Park(dev, 1, asyncModelResume); err != nil {
			return rpc.Message{}, err
		}
		return rpc.Message{}, nil
	}
	srv, err := rpc.NewAsyncServer(h, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	t.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := rpc.NewMuxClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() }) // errors swallowed per the teardown rule
	return client
}

// measureSecsPerReq pushes calls through the client keeping window in
// flight and returns mean wall seconds per request.
func measureSecsPerReq(t *testing.T, client *rpc.MuxClient, calls, window int) float64 {
	t.Helper()
	ctx := context.Background()
	req := rpc.Message{Method: "work", Payload: []byte("x")}
	for i := 0; i < 3; i++ { // warm up scheduler and pools
		if _, err := client.CallContext(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	var failures atomic.Int64
	wg.Add(calls)
	cb := func(_ rpc.Message, err error) {
		if err != nil {
			failures.Add(1)
		}
		<-sem
		wg.Done()
	}
	start := time.Now()
	for i := 0; i < calls; i++ {
		sem <- struct{}{}
		if err := client.Go(ctx, req, cb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d calls failed", f, calls)
	}
	return elapsed.Seconds() / float64(calls)
}

// measureP50Serial runs calls serial round trips and returns the p50
// client-observed latency in seconds.
func measureP50Serial(t *testing.T, client *rpc.MuxClient, calls int) float64 {
	t.Helper()
	ctx := context.Background()
	req := rpc.Message{Method: "work", Payload: []byte("x")}
	for i := 0; i < 3; i++ {
		if _, err := client.CallContext(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	durs := make([]float64, calls)
	for i := 0; i < calls; i++ {
		start := time.Now()
		if _, err := client.CallContext(ctx, req); err != nil {
			t.Fatal(err)
		}
		durs[i] = time.Since(start).Seconds()
	}
	sort.Float64s(durs)
	return durs[calls/2]
}

// asyncModel builds the core model over the shared spin-unit constants.
func asyncModel(t *testing.T) *core.Model {
	t.Helper()
	total := float64(spinNonKernel + spinKernel)
	return core.MustNew(core.Params{
		C:     total,
		Alpha: float64(spinKernel) / total,
		N:     1,
		O0:    spinO0,
		L:     spinL,
		A:     spinA,
	})
}

// TestAsyncMeasuredSpeedupMatchesModel: at in-flight count far above the
// worker pool, the parked arm's throughput over the inline baseline must
// match equation (6) — the worker is charged nk + o0 + L per request and
// the device's k/A overlaps entirely.
func TestAsyncMeasuredSpeedupMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement")
	}
	const (
		calls   = 200
		window  = 64
		workers = 4
	)
	predicted, err := asyncModel(t).Speedup(core.AsyncSameThread)
	if err != nil {
		t.Fatal(err)
	}

	devLatency := calibrateUnit() * spinKernel / spinA
	hostAsync := spinNonKernel + spinO0 + spinL
	tNull := measureSecsPerReq(t, startAsyncMeasureServer(t, 0, false, 0, workers), calls, window)
	tBase := measureSecsPerReq(t, startAsyncMeasureServer(t, spinNonKernel+spinKernel, false, 0, workers), calls, window)
	tAsync := measureSecsPerReq(t, startAsyncMeasureServer(t, hostAsync, true, devLatency, workers), calls, window)

	if tBase <= tNull || tAsync <= tNull {
		t.Fatalf("handler work does not dominate stack overhead: null=%.3gs base=%.3gs async=%.3gs",
			tNull, tBase, tAsync)
	}
	measured := (tBase - tNull) / (tAsync - tNull)
	relErr := math.Abs(measured-predicted) / predicted
	t.Logf("per-req null=%.4gs base=%.4gs async=%.4gs; measured speedup %.3fx, eqn (6) predicts %.3fx (rel err %.1f%%)",
		tNull, tBase, tAsync, measured, predicted, relErr*100)
	if relErr > 0.35 {
		t.Errorf("measured async speedup %.3fx disagrees with eqn (6) prediction %.3fx (rel err %.1f%% > 35%%)",
			measured, predicted, relErr*100)
	}
}

// TestAsyncMeasuredLatencyReductionMatchesModel: at concurrency 1 the
// parked request still waits out the device's k/A on its own critical
// path, so the p50 shift must match equation (8), not (6).
func TestAsyncMeasuredLatencyReductionMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement")
	}
	const (
		calls   = 40
		workers = 4
		// The park/resume path adds a fixed wakeup cost (device timer,
		// completion enqueue) that equation (8) does not model; scaling
		// every unit count shrinks it relative to the measured work.
		// Predictions are unchanged — the model depends only on ratios.
		scale = 3
	)
	predicted, err := asyncModel(t).LatencyReduction(core.AsyncSameThread, core.OffChip)
	if err != nil {
		t.Fatal(err)
	}

	devLatency := calibrateUnit() * scale * spinKernel / spinA
	hostAsync := scale * (spinNonKernel + spinO0 + spinL)
	p50Null := measureP50Serial(t, startAsyncMeasureServer(t, 0, false, 0, workers), calls)
	p50Base := measureP50Serial(t, startAsyncMeasureServer(t, scale*(spinNonKernel+spinKernel), false, 0, workers), calls)
	p50Async := measureP50Serial(t, startAsyncMeasureServer(t, hostAsync, true, devLatency, workers), calls)

	if p50Base <= p50Null || p50Async <= p50Null {
		t.Fatalf("handler work does not dominate stack overhead: null=%.3gs base=%.3gs async=%.3gs",
			p50Null, p50Base, p50Async)
	}
	measured := (p50Base - p50Null) / (p50Async - p50Null)
	relErr := math.Abs(measured-predicted) / predicted
	t.Logf("p50 null=%.4gs base=%.4gs async=%.4gs; measured reduction %.3fx, eqn (8) predicts %.3fx (rel err %.1f%%)",
		p50Null, p50Base, p50Async, measured, predicted, relErr*100)
	if relErr > 0.35 {
		t.Errorf("measured async latency reduction %.3fx disagrees with eqn (8) prediction %.3fx (rel err %.1f%% > 35%%)",
			measured, predicted, relErr*100)
	}
}
