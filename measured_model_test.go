package main

import (
	"context"
	"math"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// The ISSUE payoff: drive an instrumented RPC service whose handler does a
// known number of synthetic work units, "accelerate" it by replacing the
// kernel portion with the modeled offload cost, and check that the measured
// p50 latency shift (from the telemetry histograms) agrees with the
// Accelerometer model's predicted latency reduction for the same parameters.
//
// Work is counted in abstract spin units so the model maps directly:
//
//	baseline    = nonKernel + kernel                   (nk + k)
//	accelerated = nonKernel + o0 + L + kernel/A        (eqn (1), Sync)
//	null        = 0 units — measures pure RPC overhead, subtracted from
//	              both so only the handler shift is compared.

const (
	spinNonKernel = 100 // nk: work units outside the kernel
	spinKernel    = 400 // k: kernel work units (alpha = 400/500)
	spinO0        = 10  // offload preparation, in work units
	spinL         = 10  // interface cost, in work units
	spinA         = 8   // accelerator speedup
)

// spinSink defeats dead-code elimination of the spin loop.
var spinSink uint64

// spin burns a deterministic amount of CPU proportional to units.
func spin(units int) {
	x := uint64(2463534242)
	for i := 0; i < units*5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink += x
}

// measureP50 runs calls round trips against a handler that spins for the
// given unit count and returns the client-side p50 call latency in seconds.
func measureP50(t *testing.T, units, calls int) float64 {
	t.Helper()
	reg := telemetry.NewRegistry()
	mx, err := rpc.NewMetrics(reg, "bench")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rpc.NewServer(func(_ context.Context, m rpc.Message) (rpc.Message, error) {
		spin(units)
		return m, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Instrument(&rpc.Instrumentation{Metrics: mx})

	req := rpc.Message{Method: "work", Payload: []byte("x")}
	for i := 0; i < 3; i++ { // warm up scheduler and code paths
		if _, err := client.Call(req); err != nil {
			t.Fatal(err)
		}
	}
	snapBefore := mx.CallLatency.Snapshot()
	for i := 0; i < calls; i++ {
		if _, err := client.Call(req); err != nil {
			t.Fatal(err)
		}
	}
	snap := mx.CallLatency.Snapshot()
	if snap.Count != snapBefore.Count+uint64(calls) {
		t.Fatalf("histogram count = %d, want %d", snap.Count, snapBefore.Count+uint64(calls))
	}
	return snap.Quantile(0.5)
}

func TestMeasuredLatencyShiftMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement")
	}
	const calls = 40
	total := float64(spinNonKernel + spinKernel)
	m := core.MustNew(core.Params{
		C:     total,
		Alpha: float64(spinKernel) / total,
		N:     1,
		O0:    spinO0,
		L:     spinL,
		A:     spinA,
	})
	predicted, err := m.LatencyReduction(core.Sync, core.OffChip)
	if err != nil {
		t.Fatal(err)
	}

	accelUnits := spinNonKernel + spinO0 + spinL + spinKernel/spinA
	p50Null := measureP50(t, 0, calls)
	p50Base := measureP50(t, spinNonKernel+spinKernel, calls)
	p50Accel := measureP50(t, accelUnits, calls)

	if p50Base <= p50Null || p50Accel <= p50Null {
		t.Fatalf("handler work does not dominate RPC overhead: null=%.3gs base=%.3gs accel=%.3gs",
			p50Null, p50Base, p50Accel)
	}
	measured := (p50Base - p50Null) / (p50Accel - p50Null)

	relErr := math.Abs(measured-predicted) / predicted
	t.Logf("p50 null=%.4gs base=%.4gs accel=%.4gs; measured reduction %.3fx, model predicts %.3fx (rel err %.1f%%)",
		p50Null, p50Base, p50Accel, measured, predicted, relErr*100)
	if relErr > 0.35 {
		t.Errorf("measured latency reduction %.3fx disagrees with model prediction %.3fx (rel err %.1f%% > 35%%)",
			measured, predicted, relErr)
	}
}
