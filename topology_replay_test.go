package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/record"
	"repro/internal/topology"
)

// Topology regression tests over the scenario library: every checked-in
// trace (testdata/scenarios/*.trace — steady, diurnal-burst,
// retry-storm) replays through the two-tier example graph in virtual
// time, and the per-tier aggregates must match the golden file
// byte-for-byte. The simulator is exact order statistics over a
// deterministic event heap, so two runs are identical and the golden
// file regenerates reproducibly on any machine:
//
//	UPDATE_SCENARIOS=1 go test -run TestTopologyScenarioGolden .

const topologyGoldenDir = "testdata/topologies"

// topologyScenarioConfig is the fixed virtual-time substrate the golden
// aggregates are recorded under. Two workers per node, so the
// retry-storm's bursts queue and amplify the simulated tail the same
// way every run.
func topologyScenarioConfig(accel *topology.AccelConfig) topology.SimConfig {
	return topology.SimConfig{Workers: 2, UnitNanos: 1000, Accel: accel}
}

// topologyScenarioGolden is one scenario's expected per-tier aggregates:
// a baseline arm and an accelerated arm over identical arrivals.
type topologyScenarioGolden struct {
	Baseline *topology.SimResult `json:"baseline"`
	Accel    *topology.SimResult `json:"accel"`
}

func TestTopologyScenarioGolden(t *testing.T) {
	g, err := topology.ParseSpecFile(filepath.Join(topologyGoldenDir, "two-tier.topo"))
	if err != nil {
		t.Fatal(err)
	}
	accel := &topology.AccelConfig{A: 8, O0: 10, L: 10}

	got := map[string]topologyScenarioGolden{}
	for _, name := range record.Scenarios {
		tr, err := record.ReadFile(scenarioTracePath(name))
		if err != nil {
			t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
		}
		base, err := topology.Simulate(g, tr, topologyScenarioConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		again, err := topology.Simulate(g, tr, topologyScenarioConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, again) {
			t.Fatalf("%s: two simulations of the same trace diverged", name)
		}
		acc, err := topology.Simulate(g, tr, topologyScenarioConfig(accel))
		if err != nil {
			t.Fatal(err)
		}
		// Sanity invariants that hold for any trace before comparing
		// bytes: every tier saw every arrival, and acceleration can only
		// help the end-to-end median under identical arrivals.
		for _, pn := range base.PerNode {
			if pn.Requests != len(tr.Events) {
				t.Fatalf("%s: tier %s saw %d requests, want %d", name, pn.Node, pn.Requests, len(tr.Events))
			}
		}
		if acc.E2E.P50Nanos >= base.E2E.P50Nanos {
			t.Fatalf("%s: accelerated p50 %v did not beat baseline %v", name, acc.E2E.P50Nanos, base.E2E.P50Nanos)
		}
		got[name] = topologyScenarioGolden{Baseline: base, Accel: acc}
	}

	goldenPath := filepath.Join(topologyGoldenDir, "golden.json")
	if updateScenarios() {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
	}
	want := map[string]topologyScenarioGolden{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("topology aggregates diverge from %s\ngot:  %+v\nwant: %+v\n(regenerate with UPDATE_SCENARIOS=1 if the simulator changed deliberately)", goldenPath, got, want)
	}
}
